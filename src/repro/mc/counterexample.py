"""Witness and counterexample extraction for (fair) CTL properties.

Model checking answers "does the property hold?"; for debugging one also
wants *why not*.  This module extracts:

* a finite witness path for ``EF f`` / ``E[f U g]``;
* a lasso witness for ``EG f``;
* a counterexample path for ``AG f`` (a reachable state violating ``f``);
* a counterexample lasso for ``AF f`` (a path along which ``f`` never holds).

Witnesses always start at the structure's initial state unless another start
state is supplied.

The extraction is **engine-generic**: every function accepts either a Kripke
structure (a checker for the requested ``engine`` is built through
:func:`repro.mc.bitset.make_ctl_checker` and memoised on the structure, so
repeated extractions share one compilation *and* one satisfaction-set memo)
or an already-constructed CTL checker (any of
:data:`repro.mc.bitset.CTL_ENGINES` — whatever produced the failed verdict
also guides the search, so witness extraction is no slower than the check
itself; the SAT-based ``"bmc"`` engine extracts its own counterexamples as
part of solving).

Under a :class:`~repro.mc.fairness.FairnessConstraint` the witnesses are
*fair*: a finite ``EF``/``EU`` witness ends in a state starting a fair path,
and an ``EG`` witness / ``AF`` counterexample is a lasso whose cycle stays
inside a fair strongly connected component and visits **every** fairness set
— the finite certificate of one fair path.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, FrozenSet, List, Optional, Set, Union

from repro.errors import ModelCheckingError
from repro.kripke.paths import Lasso
from repro.kripke.structure import KripkeStructure, State
from repro.logic.ast import Exists, Formula, Globally, Not, TrueLiteral, Until
from repro.mc.bitset import BitsetCTLModelChecker, make_ctl_checker
from repro.mc.ctl import CTLModelChecker
from repro.mc.fairness import FairnessConstraint, normalize_fairness
from repro.mc.scc import fair_components
from repro.mc.symbolic import SymbolicCTLModelChecker

__all__ = [
    "resolve_checker",
    "witness_ef",
    "witness_eu",
    "witness_eg",
    "counterexample_ag",
    "counterexample_af",
]

_CHECKERS = (CTLModelChecker, BitsetCTLModelChecker, SymbolicCTLModelChecker)

#: Attribute on which per-structure checkers are memoised, keyed by
#: ``(engine, fairness)`` — mirrors how ``compile_structure`` memoises the
#: compiled form on the structure so the memo's lifetime is the structure's.
_MEMO_ATTR = "_witness_checker_memo"

CheckerOrStructure = Union[KripkeStructure, CTLModelChecker, BitsetCTLModelChecker,
                           SymbolicCTLModelChecker]


def resolve_checker(
    structure_or_checker: CheckerOrStructure,
    engine: str = "bitset",
    fairness: Optional[FairnessConstraint] = None,
):
    """Return a CTL checker for the argument, reusing earlier ones when possible.

    A checker passes through unchanged (its own engine and fairness
    constraint win).  A structure gets a checker from
    :func:`~repro.mc.bitset.make_ctl_checker`, memoised on the structure per
    ``(engine, fairness)`` pair — so a sequence of witness calls against the
    same structure shares one compiled form and one satisfaction-set memo.
    """
    if isinstance(structure_or_checker, _CHECKERS):
        return structure_or_checker
    structure = structure_or_checker
    fairness = normalize_fairness(fairness)
    memo = getattr(structure, _MEMO_ATTR, None)
    if memo is None:
        memo = {}
        setattr(structure, _MEMO_ATTR, memo)
    key = (engine, fairness)
    checker = memo.get(key)
    if checker is None:
        checker = make_ctl_checker(structure, engine=engine, fairness=fairness)
        memo[key] = checker
    return checker


def _explicit_structure(checker) -> KripkeStructure:
    structure = checker.structure
    if structure is None:
        raise ModelCheckingError(
            "witness extraction enumerates explicit states; the symbolic checker "
            "was built from a direct encoding without an explicit source structure"
        )
    return structure


# ---------------------------------------------------------------------------
# Graph search
# ---------------------------------------------------------------------------


def _bfs_path(
    structure: KripkeStructure,
    start: State,
    targets: FrozenSet[State],
    allowed: Optional[FrozenSet[State]] = None,
    require_step: bool = False,
) -> Optional[List[State]]:
    """Shortest path from ``start`` to any state in ``targets`` through ``allowed`` states.

    Every state on the path except the final target lies in ``allowed`` when
    it is given (the start state is always allowed), so callers never need to
    re-verify the invariant.  With ``require_step`` the path has at least one
    transition, which permits cycles back to ``start`` itself.
    """
    if not require_step and start in targets:
        return [start]
    parents: Dict[State, State] = {}

    def reconstruct(end: State) -> List[State]:
        path = [end]
        while path[-1] != start:
            path.append(parents[path[-1]])
        path.reverse()
        return path

    seen = {start}
    frontier = deque([start])
    while frontier:
        current = frontier.popleft()
        for successor in sorted(structure.successors(current), key=repr):
            if successor in targets and (successor != start or require_step):
                if successor == start:
                    return reconstruct(current) + [start]
                parents[successor] = current
                return reconstruct(successor)
            if successor in seen:
                continue
            if allowed is not None and successor not in allowed:
                continue
            seen.add(successor)
            parents[successor] = current
            frontier.append(successor)
    return None


# ---------------------------------------------------------------------------
# Finite witnesses: EF and EU
# ---------------------------------------------------------------------------


def witness_eu(
    structure_or_checker: CheckerOrStructure,
    left: Formula,
    right: Formula,
    start: Optional[State] = None,
    engine: str = "bitset",
    fairness: Optional[FairnessConstraint] = None,
) -> Optional[List[State]]:
    """Return a witness path for ``E[left U right]`` from ``start``, or ``None``.

    Every state on the path before the last satisfies ``left``; the last
    state satisfies ``right`` — and, under a fairness constraint, starts a
    fair path (so the finite witness extends to a fair infinite one).
    """
    checker = resolve_checker(structure_or_checker, engine=engine, fairness=fairness)
    structure = _explicit_structure(checker)
    origin = structure.initial_state if start is None else start
    if origin not in checker.satisfaction_set(Exists(Until(left, right))):
        return None
    targets = checker.satisfaction_set(right)
    if checker.fairness is not None:
        targets &= checker.fair_states()
    # The satisfaction check above guarantees the search succeeds, and the
    # BFS invariant guarantees path[:-1] ⊆ left-set — no re-verification.
    return _bfs_path(
        structure, origin, targets, allowed=checker.satisfaction_set(left)
    )


def witness_ef(
    structure_or_checker: CheckerOrStructure,
    formula: Formula,
    start: Optional[State] = None,
    engine: str = "bitset",
    fairness: Optional[FairnessConstraint] = None,
) -> Optional[List[State]]:
    """Return a finite path from ``start`` to a state satisfying ``formula``, or ``None``.

    This is a witness for ``EF formula`` (``E[true U formula]``).
    """
    return witness_eu(
        structure_or_checker,
        TrueLiteral(),
        formula,
        start=start,
        engine=engine,
        fairness=fairness,
    )


# ---------------------------------------------------------------------------
# Lasso witnesses: EG
# ---------------------------------------------------------------------------


def _fair_lasso(
    checker,
    structure: KripkeStructure,
    origin: State,
    good: FrozenSet[State],
) -> Lasso:
    """Build a fair lasso inside ``good`` from ``origin`` (assumed ⊨ fair ``EG``).

    The cycle lies inside one non-trivial SCC of the ``good``-restricted
    graph that intersects every fairness set, and visits every fairness set —
    the finite certificate that the infinite path it denotes is fair.
    """
    condition_sets = checker.fairness_condition_sets()
    restricted: Dict[State, List[State]] = {
        state: [
            successor
            for successor in structure.successors(state)
            if successor in good
        ]
        for state in good
    }
    # Same fair-component criterion the engines' fair-EG fixpoints use.
    components = fair_components(list(good), restricted, condition_sets)
    hub: Set[State] = set()
    for component in components:
        hub |= component
    stem_path = _bfs_path(structure, origin, frozenset(hub), allowed=good)
    if stem_path is None:  # pragma: no cover - origin ⊨ fair EG guarantees a path
        raise ModelCheckingError("no path from %r to a fair component" % (origin,))
    entry = stem_path[-1]
    member = frozenset(next(part for part in components if entry in part))

    # Tour the component: extend the cycle until every fairness set has been
    # visited, then close it back to the entry state with at least one edge.
    cycle: List[State] = [entry]
    for fair_set in condition_sets:
        if any(state in fair_set for state in cycle):
            continue
        segment = _bfs_path(
            structure, cycle[-1], frozenset(fair_set & member), allowed=member
        )
        cycle.extend(segment[1:])
    closing = _bfs_path(
        structure, cycle[-1], frozenset({entry}), allowed=member, require_step=True
    )
    cycle.extend(closing[1:-1])
    return Lasso(stem=tuple(stem_path[:-1]), cycle=tuple(cycle))


def witness_eg(
    structure_or_checker: CheckerOrStructure,
    formula: Formula,
    start: Optional[State] = None,
    engine: str = "bitset",
    fairness: Optional[FairnessConstraint] = None,
) -> Optional[Lasso]:
    """Return a lasso witnessing ``EG formula`` from ``start``, or ``None``.

    Every state on the stem and the cycle satisfies ``formula``.  Under a
    fairness constraint the lasso witnesses *fair* ``EG``: its cycle
    additionally meets every fairness set.
    """
    checker = resolve_checker(structure_or_checker, engine=engine, fairness=fairness)
    structure = _explicit_structure(checker)
    eg_set = checker.satisfaction_set(Exists(Globally(formula)))
    origin = structure.initial_state if start is None else start
    if origin not in eg_set:
        return None
    good = checker.satisfaction_set(formula)
    if checker.fairness is not None:
        return _fair_lasso(checker, structure, origin, good)
    # Plain EG: follow successors inside the EG set until a state repeats.
    # ``eg_set ⊆ good`` (EG f implies f), so no extra membership filter.
    path = [origin]
    positions = {origin: 0}
    current = origin
    while True:
        candidates = sorted(
            (s for s in structure.successors(current) if s in eg_set), key=repr
        )
        if not candidates:  # pragma: no cover - cannot happen when eg_set is correct
            return None
        current = candidates[0]
        if current in positions:
            split = positions[current]
            return Lasso(stem=tuple(path[:split]), cycle=tuple(path[split:]))
        positions[current] = len(path)
        path.append(current)


# ---------------------------------------------------------------------------
# Counterexamples: AG and AF
# ---------------------------------------------------------------------------


def counterexample_ag(
    structure_or_checker: CheckerOrStructure,
    formula: Formula,
    start: Optional[State] = None,
    engine: str = "bitset",
    fairness: Optional[FairnessConstraint] = None,
) -> Optional[List[State]]:
    """Return a path to a state violating ``formula`` (a counterexample to ``AG formula``)."""
    return witness_ef(
        structure_or_checker, Not(formula), start=start, engine=engine, fairness=fairness
    )


def counterexample_af(
    structure_or_checker: CheckerOrStructure,
    formula: Formula,
    start: Optional[State] = None,
    engine: str = "bitset",
    fairness: Optional[FairnessConstraint] = None,
) -> Optional[Lasso]:
    """Return a lasso along which ``formula`` never holds (a counterexample to ``AF formula``).

    Under a fairness constraint the lasso is fair (its cycle meets every
    fairness set): a counterexample to fair ``AF`` must itself be a fair
    path, otherwise the fair quantifier would simply ignore it.
    """
    return witness_eg(
        structure_or_checker, Not(formula), start=start, engine=engine, fairness=fairness
    )
