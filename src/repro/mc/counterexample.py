"""Witness and counterexample extraction for CTL properties.

Model checking answers "does the property hold?"; for debugging one also
wants *why not*.  This module extracts:

* a finite witness path for ``EF f`` / ``E[f U g]``;
* a lasso witness for ``EG f``;
* a counterexample path for ``AG f`` (a reachable state violating ``f``);
* a counterexample lasso for ``AF f`` (a path along which ``f`` never holds).

Witnesses always start at the structure's initial state unless another start
state is supplied.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, FrozenSet, List, Optional

from repro.kripke.paths import Lasso
from repro.kripke.structure import KripkeStructure, State
from repro.logic.ast import Formula, Not
from repro.mc.ctl import CTLModelChecker

__all__ = [
    "witness_ef",
    "witness_eu",
    "witness_eg",
    "counterexample_ag",
    "counterexample_af",
]


def _bfs_path(
    structure: KripkeStructure,
    start: State,
    targets: FrozenSet[State],
    allowed: Optional[FrozenSet[State]] = None,
) -> Optional[List[State]]:
    """Shortest path from ``start`` to any state in ``targets`` through ``allowed`` states.

    Intermediate states (everything except the final target) must lie in
    ``allowed`` when it is given; the start state is always allowed.
    """
    if start in targets:
        return [start]
    parents: Dict[State, State] = {}
    seen = {start}
    frontier = deque([start])
    while frontier:
        current = frontier.popleft()
        if allowed is not None and current != start and current not in allowed:
            continue
        for successor in sorted(structure.successors(current), key=repr):
            if successor in seen:
                continue
            seen.add(successor)
            parents[successor] = current
            if successor in targets:
                path = [successor]
                while path[-1] != start:
                    path.append(parents[path[-1]])
                path.reverse()
                return path
            frontier.append(successor)
    return None


def witness_ef(
    structure: KripkeStructure, formula: Formula, start: Optional[State] = None
) -> Optional[List[State]]:
    """Return a finite path from ``start`` to a state satisfying ``formula``, or ``None``.

    This is a witness for ``EF formula``.
    """
    checker = CTLModelChecker(structure)
    targets = checker.satisfaction_set(formula)
    origin = structure.initial_state if start is None else start
    return _bfs_path(structure, origin, targets)


def witness_eu(
    structure: KripkeStructure,
    left: Formula,
    right: Formula,
    start: Optional[State] = None,
) -> Optional[List[State]]:
    """Return a witness path for ``E[left U right]`` from ``start``, or ``None``.

    Every state on the path before the last satisfies ``left``; the last state
    satisfies ``right``.
    """
    checker = CTLModelChecker(structure)
    left_set = checker.satisfaction_set(left)
    right_set = checker.satisfaction_set(right)
    origin = structure.initial_state if start is None else start
    if origin not in right_set and origin not in left_set:
        return None
    path = _bfs_path(structure, origin, right_set, allowed=left_set)
    if path is None:
        return None
    if all(state in left_set for state in path[:-1]):
        return path
    return None


def witness_eg(
    structure: KripkeStructure, formula: Formula, start: Optional[State] = None
) -> Optional[Lasso]:
    """Return a lasso witnessing ``EG formula`` from ``start``, or ``None``.

    Every state on the stem and the cycle satisfies ``formula``.
    """
    checker = CTLModelChecker(structure)
    good = checker.satisfaction_set(formula)
    # States satisfying EG formula: greatest fixpoint inside `good`.
    from repro.logic.ast import Exists, Globally

    eg_set = checker.satisfaction_set(Exists(Globally(formula)))
    origin = structure.initial_state if start is None else start
    if origin not in eg_set:
        return None
    # Follow successors inside the EG set until a state repeats.
    path = [origin]
    positions = {origin: 0}
    current = origin
    while True:
        candidates = sorted(
            (s for s in structure.successors(current) if s in eg_set and s in good), key=repr
        )
        if not candidates:  # pragma: no cover - cannot happen when eg_set is correct
            return None
        current = candidates[0]
        if current in positions:
            split = positions[current]
            return Lasso(stem=tuple(path[:split]), cycle=tuple(path[split:]))
        positions[current] = len(path)
        path.append(current)


def counterexample_ag(
    structure: KripkeStructure, formula: Formula, start: Optional[State] = None
) -> Optional[List[State]]:
    """Return a path to a state violating ``formula`` (a counterexample to ``AG formula``)."""
    return witness_ef(structure, Not(formula), start=start)


def counterexample_af(
    structure: KripkeStructure, formula: Formula, start: Optional[State] = None
) -> Optional[Lasso]:
    """Return a lasso along which ``formula`` never holds (a counterexample to ``AF formula``)."""
    return witness_eg(structure, Not(formula), start=start)
