"""IC3 / property-directed reachability: unbounded SAT-based proving (``engine="ic3"``).

The bounded model checker (:mod:`repro.mc.bmc`) falsifies fast but proves
only via k-induction, which diverges whenever the invariant needs
*inductive strengthening* — the property is true but not inductive, and no
simple-path length within the bound closes the gap.  IC3 (Bradley's
property-directed reachability) constructs the strengthening incrementally
instead: it maintains a monotone sequence of **frames**

.. math:: F_0 = Init,\\ F_1,\\ \\dots,\\ F_N \\quad (F_i \\supseteq F_{i+1}\\text{'s clauses},\\ F_i \\subseteq F_{i+1}\\text{ as state sets})

where every ``F_i`` over-approximates the states reachable in at most ``i``
steps, each as a set of **blocked cubes** (clauses ``¬c`` over the stable
symbolic state bits shared with the BDD and BMC engines).

The algorithm, in the delta-encoded formulation:

* a **bad cube** — a model of ``F_N ∧ ¬P`` — seeds a *proof obligation*
  ``(c, N)`` on a priority queue ordered by frame (deepest first);
* an obligation ``(c, i)`` is discharged by the **relative induction
  query** ``SAT?(F_{i-1} ∧ ¬c ∧ T ∧ c′)``, issued as an assumption-based
  call into the incremental :class:`~repro.sat.solver.Solver` owned by
  frame ``i-1`` (the temporary ``¬c`` rides on a per-query activation
  literal that is retired afterwards).  UNSAT blocks ``c`` at ``i``: the
  solver's :meth:`~repro.sat.solver.Solver.unsat_core` seeds **cube
  generalization**, which drops further literals one at a time while the
  query stays UNSAT and the cube stays disjoint from the initial states,
  then pushes the generalized cube to the highest frame that still blocks
  it.  SAT yields a predecessor, shrunk against the BDD pre-image of ``c``
  (every state of the shrunk cube keeps a transition into ``c`` — the
  role ternary simulation plays in bit-level implementations), and two
  obligations go back on the queue;
* a predecessor overlapping ``Init`` (in particular any found in frame 0,
  whose solver carries the initial-state constraint) turns the obligation
  chain into a **counterexample**: the cube chain is re-solved as a BMC
  unrolling and decoded into a genuine path of the source structure;
* when the top frame has no bad cube left, a new frame opens and every
  blocked cube is tentatively **pushed** forward (``SAT?(F_i ∧ T ∧ c′)``);
  a frame whose delta empties out means ``F_i = F_{i+1}``: a **fixpoint**.
  The surviving clauses are an inductive invariant — initiation,
  consecution and safety are then **re-verified** by independent SAT
  queries against the CNF transition relation (fresh solvers, no state
  shared with the search) before the verdict is reported, and the
  certificate is exposed as :attr:`IC3ModelChecker.certificate` with
  ``last_detail = "ic3-invariant …"``.

Like BMC, the engine answers verdicts only (``supports_satisfaction_sets``
is ``False``), is rooted at the initial state, rejects fairness
constraints, and handles boolean/index-quantified combinations of ``AG p``
and ``EF p`` with propositional bodies; liveness (``AF``/``EG``) stays
with BMC falsification or the fixpoint engines (see ``docs/ENGINES.md``).
Unlike BMC there is no depth ceiling to tune — ``max_frames`` is a safety
net, not a proof parameter.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.bdd import BDDFunction
from repro.errors import FragmentError, InconclusiveError, ModelCheckingError
from repro.kripke.structure import KripkeStructure, State
from repro.kripke.symbolic import SymbolicKripkeStructure, symbolic_structure
from repro.kripke.validation import assert_total
from repro.logic.ast import (
    And,
    Exists,
    Finally,
    ForAll,
    Formula,
    Globally,
    Implies,
    Not,
    Or,
)
from repro.mc.bmc import _Unroller  # the shared CNF unrolling (counterexample decode)
from repro.mc.bmc import BoundedModelChecker
from repro.mc.fairness import FairnessConstraint, normalize_fairness
from repro.obs import metrics as _metrics
from repro.obs.progress import heartbeat as _heartbeat
from repro.obs.trace import span as _obs_span
from repro.runtime.limits import checkpoint as _checkpoint
from repro.sat.cnf import CNF, tseitin_bdd
from repro.sat.solver import Solver, SolverStats

__all__ = ["IC3ModelChecker", "InvariantCertificate", "DEFAULT_MAX_FRAMES"]

#: Frame-count safety net of :class:`IC3ModelChecker` (not a proof parameter:
#: IC3 proofs are unbounded — hitting the ceiling raises
#: :class:`~repro.errors.InconclusiveError` instead of looping forever).
DEFAULT_MAX_FRAMES = 100


@dataclass(frozen=True)
class InvariantCertificate:
    """An inductive invariant proving ``AG P``, as re-verified clauses.

    ``cubes`` are the blocked cubes (tuples of signed state-bit indices,
    ``+k``/``-k`` for bit ``k-1`` true/false); the invariant is the
    conjunction of their negations.  ``frame`` is the fixpoint frame the
    clauses stabilised at.  The certificate satisfies — checked by fresh,
    independent SAT queries before it is handed out —

    * initiation: ``Init → ¬c`` for every cube ``c``,
    * consecution: ``Inv ∧ T → Inv′``,
    * safety: ``Inv → P``.
    """

    cubes: Tuple[Tuple[int, ...], ...]
    frame: int

    @property
    def num_clauses(self) -> int:
        """The number of clauses in the invariant."""
        return len(self.cubes)


@dataclass
class _Obligation:
    """A cube that must be blocked at ``level`` (or yields a counterexample).

    ``parent`` is the obligation whose cube this one's steps into — walking
    the chain upward reconstructs the abstract counterexample trace.
    """

    level: int
    cube: Tuple[int, ...]
    parent: Optional["_Obligation"]


@dataclass
class _Counters:
    """IC3 search counters (merged into ``IC3ModelChecker.stats()``)."""

    frames: int = 0
    cubes_blocked: int = 0
    obligations: int = 0
    relative_queries: int = 0
    generalization_queries: int = 0
    literals_dropped: int = 0
    clauses_pushed: int = 0
    cubes_subsumed: int = 0
    verification_queries: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "frames": self.frames,
            "cubes_blocked": self.cubes_blocked,
            "obligations": self.obligations,
            "relative_queries": self.relative_queries,
            "generalization_queries": self.generalization_queries,
            "literals_dropped": self.literals_dropped,
            "clauses_pushed": self.clauses_pushed,
            "cubes_subsumed": self.cubes_subsumed,
            "verification_queries": self.verification_queries,
        }

    def accumulate(self, other: "_Counters") -> None:
        self.frames = max(self.frames, other.frames)
        self.cubes_blocked += other.cubes_blocked
        self.obligations += other.obligations
        self.relative_queries += other.relative_queries
        self.generalization_queries += other.generalization_queries
        self.literals_dropped += other.literals_dropped
        self.clauses_pushed += other.clauses_pushed
        self.cubes_subsumed += other.cubes_subsumed
        self.verification_queries += other.verification_queries


class _TransitionTemplate:
    """The CNF transition relation, built once and replayed per frame solver.

    Solver variables ``1 … n`` carry the current state bits, ``n+1 … 2n``
    the next state bits (``n = num_bits``); Tseitin definition variables
    come after.  Every BDD edge lowered here is pinned through a refcounted
    handle so the node-indexed caches survive garbage collection, exactly
    as in the BMC unroller.
    """

    def __init__(self, symbolic: SymbolicKripkeStructure) -> None:
        with _obs_span("ic3.compile") as sp:
            self.symbolic = symbolic
            self.num_bits = symbolic.num_bits
            self.cnf = CNF()
            self.cnf.new_vars(2 * self.num_bits)
            self.current_map = {2 * bit: bit + 1 for bit in range(self.num_bits)}
            var_map = dict(self.current_map)
            for bit in range(self.num_bits):
                var_map[2 * bit + 1] = self.num_bits + bit + 1
            self._pinned: List[BDDFunction] = []
            cache: Dict[int, int] = {}
            cluster_literals = []
            for conjuncts in symbolic.transition_parts:
                conjunct_literals = []
                for edge in conjuncts:
                    self._pinned.append(symbolic.function(edge))
                    conjunct_literals.append(
                        tseitin_bdd(symbolic.manager, edge, var_map, self.cnf, cache)
                    )
                cluster_literals.append(self.cnf.gate_and(conjunct_literals))
            self.cnf.add_clause((self.cnf.gate_or(cluster_literals),))
            sp.set(bits=self.num_bits, cnf_vars=self.cnf.num_vars)
        _metrics.gauge("ic3.template_cnf_vars").set(self.cnf.num_vars)

    def new_solver(self) -> Solver:
        """A fresh incremental solver pre-loaded with the transition relation."""
        solver = Solver()
        for _ in range(self.cnf.num_vars):
            solver.new_var()
        for clause in self.cnf.clauses:
            solver.add_clause(clause)
        return solver

    def encode_state_set(self, solver: Solver, node: int, cache: Dict[int, int]) -> int:
        """Tseitin a current-variables BDD into ``solver``; returns its literal."""
        return tseitin_bdd(self.symbolic.manager, node, self.current_map, solver, cache)


class _IC3Run:
    """One IC3 search for one invariant body (property-specific frames)."""

    def __init__(
        self,
        symbolic: SymbolicKripkeStructure,
        template: _TransitionTemplate,
        property_node: int,
        drat: bool = False,
    ) -> None:
        self.symbolic = symbolic
        self.template = template
        self.drat = drat
        self.proof_stats: Optional[Dict[str, int]] = None
        self.num_bits = symbolic.num_bits
        manager = symbolic.manager
        self.property_fn = symbolic.function(property_node)
        self.bad_fn = symbolic.function(symbolic.complement(property_node))
        self.init_fn = symbolic.function(symbolic.initial)
        self.true_fn = ~symbolic.function(0)
        self.bit_fns = [
            symbolic.function(manager.var(2 * bit)) for bit in range(self.num_bits)
        ]
        self.counters = _Counters()
        self.solver_stats = SolverStats()
        # frames[i] holds the cubes blocked *exactly* at level i (the delta
        # encoding): F_i's clause set is the union of frames[i:], so clauses
        # accumulate downward and F_1 ⊆ F_2 ⊆ … as state sets.
        self.frames: List[List[Tuple[int, ...]]] = [[], []]
        self.solvers: List[Solver] = [self._new_frame_solver(), self._new_frame_solver()]
        self._solver_caches: List[Dict[int, int]] = [{}, {}]
        self._bad_literals: Dict[int, int] = {}
        self._ticket = 0
        # Frame 0 is the initial states themselves: F_0 = Init.
        init_literal = self.template.encode_state_set(
            self.solvers[0], self.symbolic.initial, self._solver_caches[0]
        )
        self.solvers[0].add_clause((init_literal,))

    # -- plumbing -------------------------------------------------------------

    @property
    def top(self) -> int:
        return len(self.frames) - 1

    def _new_frame_solver(self) -> Solver:
        return self.template.new_solver()

    def _primed(self, literal: int) -> int:
        return literal + self.num_bits if literal > 0 else literal - self.num_bits

    def _bad_literal(self, level: int) -> int:
        literal = self._bad_literals.get(level)
        if literal is None:
            literal = self.template.encode_state_set(
                self.solvers[level], self.bad_fn.node, self._solver_caches[level]
            )
            self._bad_literals[level] = literal
        return literal

    def _cube_from_model(self, solver: Solver) -> Tuple[int, ...]:
        return tuple(
            bit if solver.model_value(bit) else -bit
            for bit in range(1, self.num_bits + 1)
        )

    def _cube_fn(self, cube: Sequence[int]) -> BDDFunction:
        fn = self.true_fn
        for literal in cube:
            bit_fn = self.bit_fns[abs(literal) - 1]
            fn = fn & (bit_fn if literal > 0 else ~bit_fn)
        return fn

    def _intersects_init(self, cube: Sequence[int]) -> bool:
        return not (self.init_fn & self._cube_fn(cube)).is_false

    # -- SAT queries ----------------------------------------------------------

    def _try_block(
        self, cube: Sequence[int], level: int
    ) -> Tuple[bool, Tuple[int, ...]]:
        """The relative induction query ``SAT?(F_{level-1} ∧ ¬cube ∧ T ∧ cube′)``.

        Returns ``(True, core_cube)`` on UNSAT — ``core_cube`` keeps only the
        literals whose primed assumptions the solver's unsat core used — or
        ``(False, predecessor_cube)`` on SAT.  The temporary ``¬cube`` clause
        is guarded by a fresh activation literal, retired afterwards by a
        unit clause the solver simplifies away.
        """
        solver = self.solvers[level - 1]
        activation = solver.new_var()
        solver.add_clause([-activation] + [-literal for literal in cube])
        assumptions = [activation] + [self._primed(literal) for literal in cube]
        self.counters.relative_queries += 1
        if solver.solve(assumptions):
            predecessor = self._cube_from_model(solver)
            solver.add_clause((-activation,))
            return False, predecessor
        core = solver.unsat_core()
        solver.add_clause((-activation,))
        kept = tuple(
            literal for literal in cube if self._primed(literal) in core
        )
        return True, kept

    def _can_push(self, cube: Sequence[int], level: int) -> bool:
        """``UNSAT?(F_level ∧ T ∧ cube′)`` — ``¬cube`` is already in ``F_level``."""
        solver = self.solvers[level]
        self.counters.relative_queries += 1
        return not solver.solve([self._primed(literal) for literal in cube])

    # -- cube surgery ---------------------------------------------------------

    def _shrink(self, cube: Sequence[int], region: BDDFunction) -> Tuple[int, ...]:
        """Drop literals while the cube stays inside ``region``.

        This is the shrinking role ternary simulation plays in bit-level IC3
        implementations: a literal is redundant when every completion of the
        widened cube still lies in the region (for predecessors, the
        pre-image of the successor cube — every widened state keeps its
        transition)."""
        current = list(cube)
        for literal in list(current):
            if len(current) <= 1:
                break
            candidate = [other for other in current if other != literal]
            if (self._cube_fn(candidate) & ~region).is_false:
                current = candidate
        return tuple(current)

    def _restore_initiation(
        self, kept: Sequence[int], original: Sequence[int]
    ) -> Tuple[int, ...]:
        """Re-add dropped literals until the cube is disjoint from ``Init``.

        Every blocking clause must hold on the initial states; the full
        original cube is disjoint (checked at obligation creation), so the
        loop terminates."""
        restored = list(kept)
        have = set(restored)
        for literal in original:
            if restored and not self._intersects_init(restored):
                break
            if literal not in have:
                restored.append(literal)
                have.add(literal)
        return tuple(restored)

    def _generalize(self, cube: Tuple[int, ...], level: int) -> Tuple[int, ...]:
        """Drop literals one at a time while the cube stays blocked at ``level``."""
        with _obs_span("ic3.generalize", level=level, before=len(cube)) as sp:
            current = cube
            for literal in cube:
                if len(current) <= 1:
                    break
                if literal not in current:
                    continue  # already dropped by an earlier core reduction
                candidate = tuple(other for other in current if other != literal)
                if self._intersects_init(candidate):
                    continue
                self.counters.generalization_queries += 1
                blocked, core = self._try_block(candidate, level)
                if blocked:
                    current = self._restore_initiation(core, candidate)
            self.counters.literals_dropped += len(cube) - len(current)
            sp.set(after=len(current))
        return current

    # -- frame bookkeeping ----------------------------------------------------

    def _is_blocked(self, cube: Sequence[int], level: int) -> bool:
        """Syntactic check: some clause of ``F_level`` already subsumes ``¬cube``."""
        cube_set = set(cube)
        for frame in self.frames[level:]:
            for blocked in frame:
                if cube_set.issuperset(blocked):
                    return True
        return False

    def _add_blocked(self, cube: Tuple[int, ...], level: int) -> None:
        """Install ``¬cube`` into ``F_1 … F_level`` (delta frame ``level``)."""
        cube_set = set(cube)
        for index in range(1, level + 1):
            survivors = [
                blocked
                for blocked in self.frames[index]
                if not cube_set.issubset(blocked)
            ]
            self.counters.cubes_subsumed += len(self.frames[index]) - len(survivors)
            self.frames[index][:] = survivors
        self.frames[level].append(cube)
        clause = [-literal for literal in cube]
        for index in range(1, level + 1):
            self.solvers[index].add_clause(clause)
        self.counters.cubes_blocked += 1

    def _open_frame(self) -> None:
        self.frames.append([])
        self.solvers.append(self._new_frame_solver())
        self._solver_caches.append({})
        self.counters.frames = self.top

    def _propagate(self) -> Optional[List[Tuple[int, ...]]]:
        """Push blocked cubes forward; an emptied delta frame is a fixpoint.

        Returns the surviving cubes (the inductive invariant's clauses) on
        fixpoint, else ``None``."""
        with _obs_span("ic3.push", frames=self.top) as sp:
            pushed_before = self.counters.clauses_pushed
            for level in range(1, self.top):
                for cube in list(self.frames[level]):
                    if self._can_push(cube, level):
                        self.frames[level].remove(cube)
                        self.frames[level + 1].append(cube)
                        self.solvers[level + 1].add_clause(
                            [-literal for literal in cube]
                        )
                        self.counters.clauses_pushed += 1
                if not self.frames[level]:
                    sp.set(
                        pushed=self.counters.clauses_pushed - pushed_before,
                        fixpoint_at=level,
                    )
                    return [
                        cube
                        for frame in self.frames[level + 1 :]
                        for cube in frame
                    ]
            sp.set(pushed=self.counters.clauses_pushed - pushed_before)
        return None

    # -- the main loop --------------------------------------------------------

    def run(
        self, max_frames: int
    ) -> Tuple[bool, Union[InvariantCertificate, List[State]]]:
        """Decide ``AG P``: ``(True, certificate)`` or ``(False, path)``.

        Raises :class:`~repro.errors.InconclusiveError` past ``max_frames``
        (a diverging IC3 run — the safety net, not a proof parameter).
        """
        with _obs_span("ic3.run") as sp:
            if self.solvers[0].solve([self._bad_literal(0)]):
                state = self.symbolic.decode_state(
                    {
                        2 * bit: self.solvers[0].model_value(bit + 1)
                        for bit in range(self.num_bits)
                    }
                )
                sp.set(outcome="initial-bad-state")
                return False, [state]
            while True:
                counters = self.counters
                _checkpoint("ic3.frame")
                _heartbeat(
                    "ic3",
                    frames=self.top,
                    obligations=counters.obligations,
                    blocked=counters.cubes_blocked,
                )
                counterexample = self._strengthen_top()
                if counterexample is not None:
                    sp.set(outcome="counterexample", frames=self.top)
                    return False, counterexample
                if self.top >= max_frames:
                    raise InconclusiveError(
                        "IC3 exceeded the frame ceiling (%d) without converging; "
                        "raise max_frames" % max_frames,
                        frames_opened=self.top,
                        conflicts_spent=sum(
                            solver.stats.conflicts for solver in self.solvers
                        ),
                    )
                self._open_frame()
                invariant_cubes = self._propagate()
                if invariant_cubes is not None:
                    sp.set(outcome="invariant", frames=self.top)
                    return True, self._certify(invariant_cubes)

    def _strengthen_top(self) -> Optional[List[State]]:
        """Block bad cubes of the top frame until none is left.

        Returns a counterexample path when some obligation chain reaches the
        initial states, else ``None`` once ``F_top ∧ Bad`` is unsatisfiable.
        The query must be re-run after every successful block: blocking one
        bad cube says nothing about the other bad states of the frame.
        """
        with _obs_span("ic3.frame", k=self.top) as sp:
            counterexample = self._strengthen_frame()
            sp.set(outcome="counterexample" if counterexample else "strengthened")
        return counterexample

    def _strengthen_frame(self) -> Optional[List[State]]:
        solver = self.solvers[self.top]
        while solver.solve([self._bad_literal(self.top)]):
            cube = self._shrink(self._cube_from_model(solver), self.bad_fn)
            if self._intersects_init(cube):
                # Only possible before any transition is taken: an initial bad
                # state, which the depth-0 query already excluded.
                raise ModelCheckingError(
                    "IC3 found an initial bad state after the depth-0 check passed"
                )  # pragma: no cover - guarded by the depth-0 query
            counterexample = self._block(_Obligation(self.top, cube, None))
            if counterexample is not None:
                return counterexample
        return None

    def _block(self, root: _Obligation) -> Optional[List[State]]:
        """Discharge ``root`` and everything it spawns (``None`` = all blocked)."""
        queue: List[Tuple[int, int, _Obligation]] = []
        self._push_obligation(queue, root)
        while queue:
            level, _, obligation = heapq.heappop(queue)
            _checkpoint("ic3.obligation")
            cube = obligation.cube
            with _obs_span(
                "ic3.obligation", level=level, cube_size=len(cube)
            ) as sp:
                if self._is_blocked(cube, level):
                    sp.set(outcome="subsumed")
                    continue
                blocked, core = self._try_block(cube, level)
                if not blocked:
                    predecessor = self._shrink(
                        core, self.symbolic.preimage_fn(self._cube_fn(cube))
                    )
                    if self._intersects_init(predecessor):
                        sp.set(outcome="counterexample")
                        return self._reconstruct(
                            [predecessor] + self._chain_cubes(obligation)
                        )
                    self._push_obligation(
                        queue, _Obligation(level - 1, predecessor, obligation)
                    )
                    self._push_obligation(queue, obligation)
                    sp.set(outcome="predecessor")
                    continue
                generalized = self._generalize(
                    self._restore_initiation(core, cube), level
                )
                frontier = level
                while frontier < self.top:
                    self.counters.generalization_queries += 1
                    pushed, _ = self._try_block(generalized, frontier + 1)
                    if not pushed:
                        break
                    frontier += 1
                self._add_blocked(generalized, frontier)
                sp.set(outcome="blocked", frontier=frontier)
                if frontier < self.top:
                    # Chase the original cube at the next frame up: it is not yet
                    # blocked there and will resurface otherwise.
                    self._push_obligation(
                        queue, _Obligation(frontier + 1, cube, obligation.parent)
                    )
        return None

    def _push_obligation(
        self, queue: List[Tuple[int, int, _Obligation]], obligation: _Obligation
    ) -> None:
        if obligation.level <= 0:
            raise ModelCheckingError(
                "IC3 obligation fell below frame 1"
            )  # pragma: no cover - predecessors of frame-1 obligations hit Init
        self._ticket += 1
        self.counters.obligations += 1
        heapq.heappush(queue, (obligation.level, self._ticket, obligation))

    @staticmethod
    def _chain_cubes(obligation: _Obligation) -> List[Tuple[int, ...]]:
        cubes = []
        current: Optional[_Obligation] = obligation
        while current is not None:
            cubes.append(current.cube)
            current = current.parent
        return cubes

    def _reconstruct(self, cubes: List[Tuple[int, ...]]) -> List[State]:
        """Re-solve the abstract cube chain as a BMC unrolling and decode it.

        The chain is satisfiable by construction (every cube lies in the
        pre-image of its successor and the last cube in ``¬P``), so this
        doubles as a cross-check: an UNSAT answer would mean the obligation
        chain was corrupt."""
        unroller = _Unroller(self.symbolic)
        unroller.assert_initial()
        last = len(cubes) - 1
        unroller.extend(last)
        handles = [self._cube_fn(cube) for cube in cubes]  # pinned while encoding
        for step, handle in enumerate(handles):
            unroller.solver.add_clause((unroller.literal(handle.node, step),))
        if not unroller.solver.solve():
            raise ModelCheckingError(
                "IC3 counterexample chain did not re-solve; the obligation "
                "queue is inconsistent"
            )  # pragma: no cover - guarded by construction
        self.solver_stats.accumulate(unroller.solver.stats)
        return unroller.decode_path(last)

    # -- certificate ----------------------------------------------------------

    def _certify(self, cubes: List[Tuple[int, ...]]) -> InvariantCertificate:
        """Re-verify initiation, consecution and safety with fresh solvers."""
        clauses = [tuple(-literal for literal in cube) for cube in cubes]
        init_solver = self.template.new_solver()
        if self.drat:
            init_solver.start_proof()
        init_cache: Dict[int, int] = {}
        init_literal = self.template.encode_state_set(
            init_solver, self.symbolic.initial, init_cache
        )
        init_solver.add_clause((init_literal,))
        for cube in cubes:
            self.counters.verification_queries += 1
            if init_solver.solve(list(cube)):
                raise ModelCheckingError(
                    "IC3 certificate failed initiation: a clause excludes an "
                    "initial state"
                )
        consecution = self.template.new_solver()
        if self.drat:
            consecution.start_proof()
        for clause in clauses:
            consecution.add_clause(clause)
        for cube in cubes:
            self.counters.verification_queries += 1
            if consecution.solve([self._primed(literal) for literal in cube]):
                raise ModelCheckingError(
                    "IC3 certificate failed consecution: the invariant is not "
                    "inductive under the CNF transition relation"
                )
        safety_cache: Dict[int, int] = {}
        bad_literal = self.template.encode_state_set(
            consecution, self.bad_fn.node, safety_cache
        )
        self.counters.verification_queries += 1
        if consecution.solve([bad_literal]):
            raise ModelCheckingError(
                "IC3 certificate failed safety: the invariant admits a bad state"
            )
        self.solver_stats.accumulate(init_solver.stats)
        self.solver_stats.accumulate(consecution.stats)
        if self.drat:
            # Certify every UNSAT verdict above (one per initiation and
            # consecution query, plus the safety query) with the
            # independent RUP/DRAT checker.
            from repro.sat.drat import ProofError, check_proof

            self.proof_stats = {"inputs": 0, "added": 0, "deleted": 0, "unsat_checks": 0}
            for proved in (init_solver, consecution):
                try:
                    counts = check_proof(proved.proof)
                except ProofError as error:
                    raise ModelCheckingError(
                        "IC3 certificate verification produced an uncertifiable "
                        "UNSAT proof: %s" % error
                    ) from error
                for key, value in counts.items():
                    self.proof_stats[key] += value
        return InvariantCertificate(cubes=tuple(sorted(cubes)), frame=self.top)

    def collect_stats(self) -> SolverStats:
        """Aggregate SAT statistics across every frame solver of this run."""
        total = SolverStats()
        total.accumulate(self.solver_stats)
        for solver in self.solvers:
            total.accumulate(solver.stats)
        return total


class IC3ModelChecker:
    """IC3/PDR prover over the engine-shared symbolic encoding.

    Accepts a plain :class:`KripkeStructure` (binary-encoded on the spot,
    sharing the memoised encoding with ``engine="bdd"``) or an
    already-encoded :class:`SymbolicKripkeStructure` — direct family
    encodings built with ``domain="free"`` skip the symbolic reachability
    fixpoint, exactly as for the bounded model checker.

    Verdicts are memoised per formula; :attr:`last_detail` reports how the
    most recent one was decided (``"ic3-invariant (12 clauses, frame 4)"``
    for proofs — contrast k-induction's ``"proved by 3-induction"`` — or
    ``"counterexample at depth 5"``), :attr:`certificate` holds the last
    re-verified :class:`InvariantCertificate`, and
    :attr:`last_counterexample` the last decoded path.

    With ``drat=True`` the certificate re-verification solvers log DRAT
    proofs, and every UNSAT verdict behind a handed-out certificate (one
    per initiation/consecution query plus the safety query) is certified
    by the independent :mod:`repro.sat.drat` forward checker;
    :attr:`last_proof_stats` reports the checker's counters.
    """

    #: IC3 decides single verdicts, not satisfaction sets — the indexed
    #: front-end dispatches ``check`` directly when it sees this flag.
    supports_satisfaction_sets = False

    def __init__(
        self,
        structure: Union[KripkeStructure, SymbolicKripkeStructure],
        max_frames: int = DEFAULT_MAX_FRAMES,
        validate_structure: bool = True,
        fairness: Optional[FairnessConstraint] = None,
        drat: bool = False,
    ) -> None:
        if normalize_fairness(fairness) is not None:
            raise FragmentError(
                "IC3 does not implement fairness-constrained semantics; use "
                "one of the fixpoint engines"
            )
        if max_frames < 1:
            raise ModelCheckingError("the IC3 frame ceiling must be positive")
        self._symbolic = symbolic_structure(structure)
        if validate_structure and self._symbolic.source is not None:
            assert_total(self._symbolic.source)
        self._max_frames = max_frames
        self._template: Optional[_TransitionTemplate] = None
        self._counters = _Counters()
        self._solver_stats = SolverStats()
        self._verdicts: Dict[Formula, bool] = {}
        # Formula plumbing (instantiation, propositional lowering, initial-
        # state checks) is delegated to a BMC front-end over the same
        # symbolic structure; its solvers are never touched.
        self._front = BoundedModelChecker(
            structure, validate_structure=False, fairness=None
        )
        self._drat = drat
        self.last_detail: str = ""
        self.last_counterexample: Optional[List[State]] = None
        self.certificate: Optional[InvariantCertificate] = None
        #: RUP/DRAT checker counters of the last certificate re-verification
        #: (populated only when ``drat=True`` and the last verdict was a proof).
        self.last_proof_stats: Optional[Dict[str, int]] = None

    # -- accessors -----------------------------------------------------------

    @property
    def symbolic(self) -> SymbolicKripkeStructure:
        """The BDD encoding whose clustered relation parts are CNF-lowered."""
        return self._symbolic

    @property
    def structure(self) -> Optional[KripkeStructure]:
        """The explicit source structure, when this checker was built from one."""
        return self._symbolic.source

    @property
    def max_frames(self) -> int:
        """The frame-count safety net (``InconclusiveError`` past it)."""
        return self._max_frames

    @property
    def fairness(self) -> None:
        """Always ``None``: IC3 rejects fairness constraints at construction."""
        return None

    def stats(self) -> Dict[str, int]:
        """Aggregated SAT statistics plus the IC3 frame/obligation counters."""
        payload = self._solver_stats.as_dict()
        payload.update(self._counters.as_dict())
        return payload

    def publish_metrics(self, **labels: object) -> None:
        """Snapshot the accumulated SAT/IC3 counters into the metrics registry."""
        labels.setdefault("engine", "ic3")
        for field, value in self._solver_stats.as_dict().items():
            _metrics.gauge("sat." + field, **labels).set(value)
        for field, value in self._counters.as_dict().items():
            _metrics.gauge("ic3." + field, **labels).set(value)

    # -- public API ----------------------------------------------------------

    def check(self, formula: Formula, state: Optional[State] = None) -> bool:
        """Decide ``M, s0 ⊨ formula`` for the IC3 fragment.

        The fragment is boolean/index-quantified combinations of ``AG p``
        and ``EF p`` with propositional bodies (plus propositional formulas
        outright); liveness operators raise
        :class:`~repro.errors.FragmentError`.  Only the initial state is
        supported as the start state.
        """
        if state is not None and not self._front._is_initial(state):
            raise ModelCheckingError(
                "the IC3 engine is rooted at the initial state; cannot check "
                "from %r" % (state,)
            )
        if formula in self._verdicts:
            self.last_detail = "memoised verdict"
            return self._verdicts[formula]
        with _obs_span("mc.check", engine="ic3") as sp:
            verdict = self._decide(self._front._instantiate(formula))
            sp.set(verdict=verdict)
        _metrics.counter("mc.checks", engine="ic3").inc()
        self.publish_metrics()
        self._verdicts[formula] = verdict
        return verdict

    def prove_invariant(self, invariant: Formula) -> Optional[InvariantCertificate]:
        """Prove ``AG invariant``; the re-verified certificate, or ``None``.

        ``None`` means a counterexample was found (see
        :attr:`last_counterexample`); ``invariant`` is the *body* ``p`` of
        ``AG p`` and must be propositional.
        """
        if self._decide_invariant(invariant):
            return self.certificate
        return None

    # -- formula dispatch ------------------------------------------------------

    def _decide(self, formula: Formula) -> bool:
        if isinstance(formula, Not):
            return not self._decide(formula.operand)
        if isinstance(formula, And):
            return self._decide(formula.left) and self._decide(formula.right)
        if isinstance(formula, Or):
            return self._decide(formula.left) or self._decide(formula.right)
        if isinstance(formula, Implies):
            return (not self._decide(formula.left)) or self._decide(formula.right)
        if isinstance(formula, ForAll) and isinstance(formula.path, Globally):
            return self._decide_invariant(formula.path.operand)
        if isinstance(formula, Exists) and isinstance(formula.path, Finally):
            return not self._decide_invariant(Not(formula.path.operand))
        if BoundedModelChecker._is_propositional(formula):
            node = self._front._propositional_node(formula)
            holds = self._symbolic.manager.apply_and(node.node, self._symbolic.initial)
            self.last_detail = "propositional evaluation at the initial state"
            return holds != 0
        raise FragmentError(
            "the IC3 engine decides the safety fragment — boolean/index-"
            "quantified combinations of AG p and EF p with propositional p; "
            "got %s (liveness falsification lives in engine='bmc', full CTL "
            "in the fixpoint engines)" % (formula,)
        )

    def _decide_invariant(self, body: Formula) -> bool:
        node = self._front._propositional_node(body)
        if self._template is None:
            self._template = _TransitionTemplate(self._symbolic)
        run = _IC3Run(self._symbolic, self._template, node.node, drat=self._drat)
        try:
            safe, payload = run.run(self._max_frames)
        finally:
            self._counters.accumulate(run.counters)
            self._solver_stats.accumulate(run.collect_stats())
            self.last_proof_stats = run.proof_stats
        if safe:
            assert isinstance(payload, InvariantCertificate)
            self.certificate = payload
            self.last_counterexample = None
            self.last_detail = "ic3-invariant (%d clauses, frame %d)" % (
                payload.num_clauses,
                payload.frame,
            )
            return True
        assert isinstance(payload, list)
        self.last_counterexample = payload
        self.last_detail = "counterexample at depth %d" % (len(payload) - 1)
        return False

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "<IC3ModelChecker: %d bits, %d frames max>" % (
            self._symbolic.num_bits,
            self._max_frames,
        )
