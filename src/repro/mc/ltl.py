"""Existential LTL model checking via the tableau (atoms) construction.

The CTL* model checker reduces the hard case — deciding ``E g`` for a path
formula ``g`` whose proper state sub-formulas have already been evaluated — to
*existential LTL model checking*: which states of a Kripke structure start a
path satisfying a pure linear-time formula?  This module answers that question
with the classical closure/atom construction (Lichtenstein & Pnueli 1985, the
same technique cited in the paper's introduction):

1.  expand the formula to the core connectives (``¬ ∧ ∨ U X`` over atomic
    leaves) and compute its *closure* (all sub-formulas, plus ``X(f U g)`` for
    every until, which encodes the one-step unfolding
    ``f U g ≡ g ∨ (f ∧ X(f U g))``);
2.  an *atom* for a structure state ``s`` is determined by ``s`` (which fixes
    the truth of the atomic leaves) together with a guessed subset ``K`` of the
    ``X``-formulas in the closure; membership of every other closure formula
    follows deterministically bottom-up;
3.  build the product graph over nodes ``(s, K)`` with edges that respect both
    the structure's transition relation and the ``X`` obligations;
4.  ``E g`` holds at ``s`` iff some node ``(s, K)`` whose atom contains ``g``
    can reach a non-trivial *self-fulfilling* strongly connected component —
    one in which every until formula present in some atom has its right-hand
    side present in some atom of the component.

The construction is exponential in the number of ``X``/``U`` sub-formulas of
``g`` (not in the structure), which is unavoidable for CTL* and perfectly
adequate for the formulas in the paper.
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, Iterable, List, Set, Tuple

from repro.errors import ModelCheckingError
from repro.kripke.structure import KripkeStructure, State
from repro.kripke.validation import assert_total
from repro.mc.scc import strongly_connected_components
from repro.logic.ast import (
    And,
    Atom,
    ExactlyOne,
    FalseLiteral,
    Formula,
    IndexedAtom,
    Next,
    Not,
    Or,
    TrueLiteral,
    Until,
    subformulas,
)
from repro.logic.syntax import is_ltl_path_formula
from repro.logic.transform import expand

__all__ = ["existential_states", "exists_path_satisfying", "AtomEval"]

#: Callback deciding an atomic leaf at a structure state.
AtomEval = Callable[[State, Formula], bool]

_LEAVES = (TrueLiteral, FalseLiteral, Atom, IndexedAtom, ExactlyOne)


def _default_atom_eval(structure: KripkeStructure) -> AtomEval:
    def evaluate(state: State, leaf: Formula) -> bool:
        return structure.atom_holds(state, leaf)

    return evaluate


class _Tableau:
    """The closure/atom machinery for one path formula."""

    def __init__(self, path_formula: Formula) -> None:
        if not is_ltl_path_formula(path_formula):
            raise ModelCheckingError(
                "existential LTL checking expects a pure path formula without "
                "path or index quantifiers; got %s" % path_formula
            )
        self.formula = expand(path_formula)
        closure: List[Formula] = list(subformulas(self.formula))
        # One-step unfolding of untils introduces X(f U g) formulas.
        for candidate in list(closure):
            if isinstance(candidate, Until):
                unfolding = Next(candidate)
                if unfolding not in closure:
                    closure.append(unfolding)
        self.closure: Tuple[Formula, ...] = tuple(closure)
        self.next_formulas: Tuple[Next, ...] = tuple(
            candidate for candidate in self.closure if isinstance(candidate, Next)
        )
        self.until_formulas: Tuple[Until, ...] = tuple(
            candidate for candidate in self.closure if isinstance(candidate, Until)
        )

    def member(
        self,
        formula: Formula,
        state: State,
        guess: FrozenSet[Next],
        atom_eval: AtomEval,
        cache: Dict[Tuple[Formula, State, FrozenSet[Next]], bool],
    ) -> bool:
        """Decide membership of ``formula`` in the atom determined by ``(state, guess)``."""
        key = (formula, state, guess)
        cached = cache.get(key)
        if cached is not None:
            return cached
        if isinstance(formula, TrueLiteral):
            value = True
        elif isinstance(formula, FalseLiteral):
            value = False
        elif isinstance(formula, _LEAVES):
            value = atom_eval(state, formula)
        elif isinstance(formula, Not):
            value = not self.member(formula.operand, state, guess, atom_eval, cache)
        elif isinstance(formula, And):
            value = self.member(formula.left, state, guess, atom_eval, cache) and self.member(
                formula.right, state, guess, atom_eval, cache
            )
        elif isinstance(formula, Or):
            value = self.member(formula.left, state, guess, atom_eval, cache) or self.member(
                formula.right, state, guess, atom_eval, cache
            )
        elif isinstance(formula, Next):
            value = formula in guess
        elif isinstance(formula, Until):
            value = self.member(formula.right, state, guess, atom_eval, cache) or (
                self.member(formula.left, state, guess, atom_eval, cache)
                and Next(formula) in guess
            )
        else:
            raise ModelCheckingError(
                "unexpected operator in expanded LTL formula: %r" % (formula,)
            )
        cache[key] = value
        return value


def _powerset(items: Tuple[Next, ...]) -> Iterable[FrozenSet[Next]]:
    size = len(items)
    for mask in range(1 << size):
        yield frozenset(items[bit] for bit in range(size) if mask & (1 << bit))


def existential_states(
    structure: KripkeStructure,
    path_formula: Formula,
    atom_eval: AtomEval | None = None,
    validate_structure: bool = True,
) -> FrozenSet[State]:
    """Return the states ``s`` with ``M, s ⊨ E path_formula``.

    Parameters
    ----------
    structure:
        The Kripke structure.  Its transition relation must be total — a
        state without successors starts no infinite path, so the atom
        construction would silently report it as satisfying no ``E g`` (and,
        worse, flip universal verdicts derived from it); the structure is
        therefore validated up front, matching the CTL checkers.
    path_formula:
        A pure path formula (no ``E``/``A``, no index quantifiers).  Atomic
        leaves may be :class:`Atom`, :class:`IndexedAtom` (with concrete
        index), :class:`ExactlyOne`, or proxy atoms introduced by the CTL*
        checker.
    atom_eval:
        Callback deciding atomic leaves at a state; defaults to the
        structure's own labelling.
    validate_structure:
        Pass ``False`` only when totality was already asserted (the CTL*
        checker validates once at construction and calls this per path
        subformula).
    """
    if validate_structure:
        assert_total(structure)
    evaluator = atom_eval or _default_atom_eval(structure)
    tableau = _Tableau(path_formula)
    membership_cache: Dict[Tuple[Formula, State, FrozenSet[Next]], bool] = {}
    guesses = list(_powerset(tableau.next_formulas))

    # Product nodes and edges.
    nodes: List[Tuple[State, FrozenSet[Next]]] = [
        (state, guess) for state in structure.states for guess in guesses
    ]
    successors: Dict[Tuple[State, FrozenSet[Next]], List[Tuple[State, FrozenSet[Next]]]] = {
        node: [] for node in nodes
    }
    for state, guess in nodes:
        obligations = {
            next_formula: (next_formula in guess) for next_formula in tableau.next_formulas
        }
        for target in structure.successors(state):
            for target_guess in guesses:
                consistent = all(
                    obligations[next_formula]
                    == tableau.member(
                        next_formula.operand, target, target_guess, evaluator, membership_cache
                    )
                    for next_formula in tableau.next_formulas
                )
                if consistent:
                    successors[(state, guess)].append((target, target_guess))

    # Self-fulfilling, non-trivial SCCs.
    components = strongly_connected_components(nodes, successors)
    fair_nodes: Set[Tuple[State, FrozenSet[Next]]] = set()
    for component in components:
        non_trivial = len(component) > 1 or any(
            node in successors[node] for node in component
        )
        if not non_trivial:
            continue
        fulfilling = True
        for until in tableau.until_formulas:
            promised = any(
                tableau.member(until, state, guess, evaluator, membership_cache)
                for state, guess in component
            )
            if not promised:
                continue
            fulfilled = any(
                tableau.member(until.right, state, guess, evaluator, membership_cache)
                for state, guess in component
            )
            if not fulfilled:
                fulfilling = False
                break
        if fulfilling:
            fair_nodes |= component

    # Backwards reachability from the fair nodes.
    predecessors: Dict[Tuple[State, FrozenSet[Next]], List[Tuple[State, FrozenSet[Next]]]] = {
        node: [] for node in nodes
    }
    for node, targets in successors.items():
        for target in targets:
            predecessors[target].append(node)
    can_reach_fair: Set[Tuple[State, FrozenSet[Next]]] = set(fair_nodes)
    frontier = list(fair_nodes)
    while frontier:
        node = frontier.pop()
        for predecessor in predecessors[node]:
            if predecessor not in can_reach_fair:
                can_reach_fair.add(predecessor)
                frontier.append(predecessor)

    result = set()
    for state in structure.states:
        for guess in guesses:
            if (state, guess) in can_reach_fair and tableau.member(
                tableau.formula, state, guess, evaluator, membership_cache
            ):
                result.add(state)
                break
    return frozenset(result)


def exists_path_satisfying(
    structure: KripkeStructure,
    state: State,
    path_formula: Formula,
    atom_eval: AtomEval | None = None,
) -> bool:
    """Decide ``M, state ⊨ E path_formula``."""
    return state in existential_states(structure, path_formula, atom_eval)
