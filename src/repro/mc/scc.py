"""Strongly connected components, shared by the LTL tableau and the fair-CTL engines.

The iterative Tarjan algorithm below was originally private to
:mod:`repro.mc.ltl` (where it finds the self-fulfilling components of the
closure/atom product graph).  Fairness-constrained CTL checking needs the
same machinery — the explicit-state fair-``EG`` fixpoint restricts the
structure to the states satisfying the operand and keeps the non-trivial
components that intersect every fairness set — so the implementation lives
here and both callers share it.

The graph is given as a node list plus a successor function; a mapping works
too (``mapping[node]`` is used when the argument is not callable), which is
the shape the LTL tableau already builds.
"""

from __future__ import annotations

from typing import (
    AbstractSet,
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Sequence,
    Set,
    TypeVar,
    Union,
)

__all__ = ["strongly_connected_components", "fair_components"]

Node = TypeVar("Node")


def strongly_connected_components(
    nodes: Sequence[Node],
    successors: Union[Callable[[Node], Iterable[Node]], Mapping[Node, Iterable[Node]]],
) -> List[Set[Node]]:
    """Iterative Tarjan SCC computation over an explicitly listed node set.

    Parameters
    ----------
    nodes:
        Every node of the graph.  Successors outside this set must not be
        produced by ``successors`` (callers restricting a structure to a
        candidate state set filter the adjacency accordingly).
    successors:
        Either a callable returning each node's successors or a mapping from
        node to successor iterable.

    Returns the components as sets, in reverse topological order (Tarjan's
    invariant: a component is emitted only after every component it can
    reach).
    """
    if callable(successors):
        successors_of = successors
    else:
        successors_of = successors.__getitem__

    index_counter = 0
    indices: Dict[Node, int] = {}
    lowlinks: Dict[Node, int] = {}
    on_stack: Set[Node] = set()
    stack: List[Node] = []
    components: List[Set[Node]] = []

    for root in nodes:
        if root in indices:
            continue
        work = [(root, iter(successors_of(root)))]
        indices[root] = lowlinks[root] = index_counter
        index_counter += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, iterator = work[-1]
            advanced = False
            for successor in iterator:
                if successor not in indices:
                    indices[successor] = lowlinks[successor] = index_counter
                    index_counter += 1
                    stack.append(successor)
                    on_stack.add(successor)
                    work.append((successor, iter(successors_of(successor))))
                    advanced = True
                    break
                if successor in on_stack:
                    lowlinks[node] = min(lowlinks[node], indices[successor])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlinks[parent] = min(lowlinks[parent], lowlinks[node])
            if lowlinks[node] == indices[node]:
                component: Set[Node] = set()
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.add(member)
                    if member == node:
                        break
                components.append(component)
    return components


def fair_components(
    nodes: Sequence[Node],
    successors: Mapping[Node, Iterable[Node]],
    condition_sets: Sequence[AbstractSet[Node]],
) -> List[Set[Node]]:
    """The *fair* SCCs of an (already restricted) graph.

    A component is fair when it is non-trivial — more than one node, or a
    single node with a self-loop in the restricted adjacency — and
    intersects **every** condition set.  A fair path confined to the
    restricted graph eventually tours exactly such a component, which is why
    the explicit fair-``EG`` fixpoints and the fair-lasso extractor all
    reduce to this one criterion; keeping it here keeps the three callers
    from drifting apart.
    """
    result: List[Set[Node]] = []
    for component in strongly_connected_components(nodes, successors):
        non_trivial = len(component) > 1 or any(
            node in successors[node] for node in component
        )
        if non_trivial and all(
            component & condition_set for condition_set in condition_sets
        ):
            result.append(component)
    return result
