"""Full CTL* model checking.

CTL* state formulas are decided recursively: boolean structure is handled with
set operations, and the essential case ``E g`` (for an arbitrary path formula
``g``) is reduced to existential LTL model checking by replacing the maximal
proper *state* sub-formulas of ``g`` with fresh proxy atoms whose satisfaction
sets have already been computed.  This is the standard reduction of CTL* model
checking to LTL model checking; the LTL core lives in :mod:`repro.mc.ltl`.

The checker accepts the full syntax of :mod:`repro.logic.ast` except index
quantifiers, which must be instantiated over a finite index set first (see
:mod:`repro.mc.indexed`).  When a formula happens to lie in CTL the much
faster labelling algorithm of :mod:`repro.mc.ctl` is used instead, so calling
this checker uniformly carries no penalty for CTL inputs.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Optional

from repro.errors import FragmentError
from repro.kripke.structure import KripkeStructure, State
from repro.kripke.validation import assert_total
from repro.logic.ast import (
    And,
    Atom,
    ExactlyOne,
    Exists,
    FalseLiteral,
    ForAll,
    Formula,
    Iff,
    Implies,
    IndexExists,
    IndexForall,
    IndexedAtom,
    Not,
    Or,
    TrueLiteral,
    walk,
)
from repro.logic.syntax import is_ctl, is_state_formula
from repro.logic.transform import map_children
from repro.mc import ltl
from repro.mc.ctl import CTLModelChecker

__all__ = ["CTLStarModelChecker", "satisfaction_set", "check"]

_ATOMIC = (TrueLiteral, FalseLiteral, Atom, IndexedAtom, ExactlyOne)
_PROXY_PREFIX = "__ctlstar_proxy_"


class CTLStarModelChecker:
    """CTL* model checker bound to one Kripke structure."""

    def __init__(
        self,
        structure: KripkeStructure,
        validate_structure: bool = True,
        use_ctl_fast_path: bool = True,
    ) -> None:
        if validate_structure:
            assert_total(structure)
        self._structure = structure
        self._cache: Dict[Formula, FrozenSet[State]] = {}
        self._use_ctl_fast_path = use_ctl_fast_path
        self._ctl = CTLModelChecker(structure, validate_structure=False)

    @property
    def structure(self) -> KripkeStructure:
        """The structure this checker operates on."""
        return self._structure

    # -- public API ----------------------------------------------------------

    def satisfaction_set(self, formula: Formula) -> FrozenSet[State]:
        """Return the set of states satisfying the CTL* state formula ``formula``."""
        if not is_state_formula(formula):
            raise FragmentError(
                "CTL* model checking decides state formulas; %s is a path formula "
                "(wrap it in E or A)" % formula
            )
        return self._sat(formula)

    def check(self, formula: Formula, state: Optional[State] = None) -> bool:
        """Decide ``M, state ⊨ formula`` (default state: the initial state)."""
        target = self._structure.initial_state if state is None else state
        return target in self.satisfaction_set(formula)

    # -- recursive evaluation --------------------------------------------------

    def _sat(self, formula: Formula) -> FrozenSet[State]:
        cached = self._cache.get(formula)
        if cached is not None:
            return cached
        result = self._compute(formula)
        self._cache[formula] = result
        return result

    def _compute(self, formula: Formula) -> FrozenSet[State]:
        structure = self._structure
        if isinstance(formula, (IndexExists, IndexForall)):
            raise FragmentError(
                "index quantifiers must be instantiated over a finite index set "
                "before CTL* checking (use repro.mc.indexed); got %s" % formula
            )
        if self._use_ctl_fast_path and self._is_plain_ctl(formula):
            return self._ctl.satisfaction_set(formula)
        if isinstance(formula, TrueLiteral):
            return structure.states
        if isinstance(formula, FalseLiteral):
            return frozenset()
        if isinstance(formula, (Atom, IndexedAtom, ExactlyOne)):
            return frozenset(
                state for state in structure.states if structure.atom_holds(state, formula)
            )
        if isinstance(formula, Not):
            return structure.states - self._sat(formula.operand)
        if isinstance(formula, And):
            return self._sat(formula.left) & self._sat(formula.right)
        if isinstance(formula, Or):
            return self._sat(formula.left) | self._sat(formula.right)
        if isinstance(formula, Implies):
            return (structure.states - self._sat(formula.left)) | self._sat(formula.right)
        if isinstance(formula, Iff):
            left = self._sat(formula.left)
            right = self._sat(formula.right)
            return frozenset(
                state for state in structure.states if (state in left) == (state in right)
            )
        if isinstance(formula, Exists):
            return self._exists(formula.path)
        if isinstance(formula, ForAll):
            return structure.states - self._exists(Not(formula.path))
        raise FragmentError("cannot evaluate %s as a CTL* state formula" % formula)

    @staticmethod
    def _is_plain_ctl(formula: Formula) -> bool:
        if not is_ctl(formula):
            return False
        return not any(isinstance(node, (IndexExists, IndexForall)) for node in walk(formula))

    # -- the E(path formula) case ----------------------------------------------

    def _exists(self, path: Formula) -> FrozenSet[State]:
        # E f for a state formula f is equivalent to f (the transition relation
        # is total, so every state starts at least one path).
        if is_state_formula(path):
            return self._sat(path)

        proxies: Dict[str, FrozenSet[State]] = {}
        proxied_path = self._proxy_state_subformulas(path, proxies)

        def atom_eval(state: State, leaf: Formula) -> bool:
            if isinstance(leaf, Atom) and leaf.name in proxies:
                return state in proxies[leaf.name]
            return self._structure.atom_holds(state, leaf)

        # Totality was asserted once at construction (or by the caller that
        # opted out of validation), so skip the per-subformula re-scan.
        return ltl.existential_states(
            self._structure, proxied_path, atom_eval, validate_structure=False
        )

    def _proxy_state_subformulas(self, path: Formula, proxies: Dict[str, FrozenSet[State]]) -> Formula:
        """Replace maximal proper state sub-formulas of ``path`` with fresh proxy atoms.

        Atomic leaves are left alone (the LTL core evaluates them directly);
        every other maximal state sub-formula is evaluated recursively and
        replaced by a proxy atom labelled with its satisfaction set.
        """
        if isinstance(path, _ATOMIC):
            return path
        if is_state_formula(path):
            name = "%s%d" % (_PROXY_PREFIX, len(proxies))
            proxies[name] = self._sat(path)
            return Atom(name)
        return map_children(path, lambda child: self._proxy_state_subformulas(child, proxies))


def satisfaction_set(structure: KripkeStructure, formula: Formula) -> FrozenSet[State]:
    """One-shot helper: the satisfaction set of a CTL* state formula."""
    return CTLStarModelChecker(structure).satisfaction_set(formula)


def check(structure: KripkeStructure, formula: Formula, state: Optional[State] = None) -> bool:
    """One-shot helper: decide ``structure, state ⊨ formula`` (default: initial state)."""
    return CTLStarModelChecker(structure).check(formula, state)
