"""A brute-force lasso oracle used to cross-validate the model checkers.

On a finite Kripke structure every satisfiable path property has an
*ultimately periodic* witness.  This module evaluates LTL path formulas
directly on lassos (``stem · cycle^ω``) and searches for simple-lasso
witnesses.  Because the search is restricted to lassos whose stem and cycle
are simple (no repeated states), finding a witness proves ``E g`` but failing
to find one does not refute it; the test-suite therefore uses the oracle as a
*one-sided* check against :mod:`repro.mc.ltl` together with exact agreement
tests on deterministic structures (where simple lassos are exhaustive).

Leaf formulas are decided per lasso position.  With ``engine="bitset"``
(the default) the structure is compiled once per search and leaves are read
off the compiled per-proposition bitmasks; ``engine="naive"`` keeps the
original per-state label-set lookups; ``engine="bdd"`` reads them off the
symbolic encoding's per-proposition BDDs.  The module also hosts
:func:`crosscheck_ctl_engines`, the differential-testing entry point that
replays a CTL formula through every satisfaction-set engine
(:data:`repro.mc.bitset.CTL_ENGINES`) and insists on identical satisfaction
sets.  The verdict-only SAT engines (``"bmc"``, ``"ic3"``) are outside
``CTL_ENGINES`` and get their own differential suites
(``tests/property/test_property_bmc.py`` / ``test_property_ic3.py``); see
``docs/ENGINES.md`` for the full registry.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import EngineDisagreementError, ModelCheckingError
from repro.kripke.compiled import compile_structure
from repro.kripke.paths import Lasso, enumerate_lassos
from repro.kripke.structure import KripkeStructure, State
from repro.logic.ast import (
    And,
    Atom,
    ExactlyOne,
    FalseLiteral,
    Formula,
    IndexedAtom,
    Next,
    Not,
    Or,
    TrueLiteral,
    Until,
    subformulas,
)
from repro.logic.syntax import is_ltl_path_formula
from repro.logic.transform import expand
from repro.mc.bitset import CTL_ENGINES, make_ctl_checker
from repro.mc.ltl import AtomEval

__all__ = [
    "lasso_satisfies",
    "find_lasso_witness",
    "simple_lasso_exists",
    "crosscheck_ctl_engines",
]

_LEAVES = (TrueLiteral, FalseLiteral, Atom, IndexedAtom, ExactlyOne)


def _make_atom_eval(
    structure: KripkeStructure,
    atom_eval: Optional[AtomEval],
    engine: str,
) -> AtomEval:
    """Resolve the leaf evaluator: explicit ``atom_eval`` wins, then the engine.

    ``compile_structure`` memoises per live structure, so repeated oracle
    calls against the same structure share one compilation.
    """
    if atom_eval is not None:
        return atom_eval
    if engine == "bitset":
        frozen = compile_structure(structure)

        def evaluate(state: State, leaf: Formula) -> bool:
            return bool(frozen.atom_mask(leaf) >> frozen.index_of(state) & 1)

        return evaluate
    if engine == "naive":
        return lambda state, leaf: structure.atom_holds(state, leaf)
    if engine == "bdd":
        from repro.kripke.symbolic import symbolic_structure

        encoded = symbolic_structure(structure)

        def evaluate_symbolic(state: State, leaf: Formula) -> bool:
            return encoded.holds_at(encoded.atom_node(leaf), state)

        return evaluate_symbolic
    raise ModelCheckingError(
        "unknown CTL engine %r; expected one of %s" % (engine, ", ".join(CTL_ENGINES))
    )


def lasso_satisfies(
    structure: KripkeStructure,
    lasso: Lasso,
    path_formula: Formula,
    atom_eval: AtomEval | None = None,
    engine: str = "bitset",
) -> bool:
    """Decide whether the infinite path represented by ``lasso`` satisfies ``path_formula``.

    The lasso is a finite object (stem plus cycle); satisfaction is computed
    with fixpoint iteration over its positions, which is exact because the
    path is deterministic from every position onward.
    """
    if not is_ltl_path_formula(path_formula):
        raise ModelCheckingError(
            "the lasso oracle evaluates pure path formulas; got %s" % path_formula
        )
    evaluate = _make_atom_eval(structure, atom_eval, engine)
    core = expand(path_formula)
    positions = lasso.positions()
    count = len(positions)
    successor = [lasso.successor_position(index) for index in range(count)]

    values: Dict[Formula, List[bool]] = {}
    for formula in subformulas(core):
        if isinstance(formula, TrueLiteral):
            values[formula] = [True] * count
        elif isinstance(formula, FalseLiteral):
            values[formula] = [False] * count
        elif isinstance(formula, _LEAVES):
            values[formula] = [evaluate(positions[index], formula) for index in range(count)]
        elif isinstance(formula, Not):
            operand = values[formula.operand]
            values[formula] = [not value for value in operand]
        elif isinstance(formula, And):
            left, right = values[formula.left], values[formula.right]
            values[formula] = [left[index] and right[index] for index in range(count)]
        elif isinstance(formula, Or):
            left, right = values[formula.left], values[formula.right]
            values[formula] = [left[index] or right[index] for index in range(count)]
        elif isinstance(formula, Next):
            operand = values[formula.operand]
            values[formula] = [operand[successor[index]] for index in range(count)]
        elif isinstance(formula, Until):
            left, right = values[formula.left], values[formula.right]
            # Least fixpoint of v[i] = right[i] or (left[i] and v[succ(i)]).
            current = [False] * count
            for _ in range(count + 1):
                updated = [
                    right[index] or (left[index] and current[successor[index]])
                    for index in range(count)
                ]
                if updated == current:
                    break
                current = updated
            values[formula] = current
        else:
            raise ModelCheckingError("unexpected operator in expanded formula: %r" % (formula,))
    return values[core][0]


def find_lasso_witness(
    structure: KripkeStructure,
    state: State,
    path_formula: Formula,
    atom_eval: AtomEval | None = None,
    max_stem: Optional[int] = None,
    max_cycle: Optional[int] = None,
    engine: str = "bitset",
) -> Optional[Lasso]:
    """Search for a simple lasso from ``state`` satisfying ``path_formula``.

    Returns the first witness found, or ``None`` when no *simple* lasso
    witness exists (which does not by itself refute ``E path_formula``).
    The structure is compiled once for the whole search when the bitset
    engine decides the leaves.
    """
    evaluate = _make_atom_eval(structure, atom_eval, engine)
    for lasso in enumerate_lassos(structure, state, max_stem=max_stem, max_cycle=max_cycle):
        if lasso_satisfies(structure, lasso, path_formula, evaluate):
            return lasso
    return None


def simple_lasso_exists(
    structure: KripkeStructure,
    state: State,
    path_formula: Formula,
    atom_eval: AtomEval | None = None,
    engine: str = "bitset",
) -> bool:
    """Return ``True`` when some simple lasso from ``state`` satisfies ``path_formula``."""
    return find_lasso_witness(structure, state, path_formula, atom_eval, engine=engine) is not None


def crosscheck_ctl_engines(
    structure: KripkeStructure,
    formula: Formula,
    validate_structure: bool = True,
    fairness=None,
):
    """Differential test: run ``formula`` through every CTL engine and compare.

    Replays the formula through all of :data:`repro.mc.bitset.CTL_ENGINES` —
    the compiled bitset engine, the naive frozenset oracle, and the symbolic
    BDD engine — and insists on identical satisfaction sets.  Returns the
    common satisfaction set; raises
    :class:`~repro.errors.EngineDisagreementError` when any two engines
    disagree, carrying the formula and each engine's satisfaction set so the
    property-based tests (and the parallel portfolio's late-loser audit) can
    report exactly which states differ.

    With ``fairness`` (a :class:`repro.mc.fairness.FairnessConstraint`) every
    engine decides the fairness-constrained semantics, which differentially
    tests the three independent fair-``EG`` implementations (two
    SCC-restricted explicit fixpoints, one Emerson–Lei symbolic fixpoint)
    against each other.
    """
    from repro.obs import metrics as _metrics
    from repro.obs.trace import span as _obs_span

    reference = None
    reference_engine = None
    _metrics.counter("oracle.crosschecks").inc()
    for engine in CTL_ENGINES:
        checker = make_ctl_checker(
            structure,
            engine=engine,
            validate_structure=validate_structure,
            fairness=fairness,
        )
        with _obs_span("oracle.crosscheck", engine=engine):
            result = checker.satisfaction_set(formula)
        if reference is None:
            reference, reference_engine = result, engine
        elif result != reference:
            raise EngineDisagreementError(
                "engines %r and %r disagree on %s: only-%s=%r, only-%s=%r"
                % (
                    reference_engine,
                    engine,
                    formula,
                    reference_engine,
                    sorted(reference - result, key=repr),
                    engine,
                    sorted(result - reference, key=repr),
                ),
                formula=formula,
                verdicts={
                    reference_engine: sorted(reference, key=repr),
                    engine: sorted(result, key=repr),
                },
            )
    return reference
