"""Fairness constraints for fairness-constrained (fair) CTL model checking.

The Section 5 liveness claims of the paper ("a delayed process eventually
enters its critical region") hold on the token ring only because the CTL
formulas quantify over *all* paths of a structure whose transition rules
already force progress.  The stronger, more natural liveness claims —
``AF t_i``, "process *i* eventually holds the token", with no request
premise — are false in plain CTL: a path on which process *i* simply never
takes a step is a counterexample.  The classical fix (Clarke, Emerson &
Sistla) is to restrict the path quantifiers to *fair* paths.

This module defines the constraint object shared by all three CTL engines:

* a :class:`FairnessConstraint` is a finite family of *fairness conditions*,
  each a plain CTL state formula denoting a set of "fair states";
* a path is **fair** iff it visits the satisfaction set of *every* condition
  infinitely often (generalized unconditional/impartiality fairness; weak
  fairness of a scheduler is expressed by one condition per process, e.g.
  :func:`repro.systems.token_ring.ring_scheduler_fairness`);
* under a constraint the path quantifiers of CTL range over fair paths only:
  ``E_f X f = EX (f ∧ fair)``, ``E_f[f U g] = E[f U (g ∧ fair)]`` where
  ``fair`` is the set of states starting at least one fair path, and
  ``E_f G f`` needs its own fixpoint (SCC-restricted in the explicit
  engines, the Emerson–Lei nested fixpoint in the symbolic one).

Conditions are themselves evaluated under the *plain* (unconstrained) CTL
semantics — the constraint defines what "fair" means, so evaluating its
conditions fairly would be circular.  Conditions are state formulas, not
state sets, so one constraint object works across all engines — including
symbolic encodings whose states are never enumerated.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Tuple, Union

from repro.errors import FragmentError, ModelCheckingError
from repro.logic.ast import Formula, IndexExists, IndexForall, walk
from repro.logic.syntax import is_ctl

__all__ = ["FairnessConstraint", "normalize_fairness"]


@dataclass(frozen=True)
class FairnessConstraint:
    """A finite family of fairness conditions (generalized unconditional fairness).

    A path is fair iff it visits the satisfaction set of every condition
    infinitely often.  Conditions must be plain CTL state formulas without
    index quantifiers (instantiate per-process conditions over a concrete
    index set first — see
    :func:`repro.systems.token_ring.ring_scheduler_fairness`).

    The constraint is immutable and hashable, so checkers can be memoised
    per ``(engine, fairness)`` pair.
    """

    conditions: Tuple[Formula, ...]
    name: Optional[str] = field(default=None, compare=False)

    def __post_init__(self) -> None:
        conditions = tuple(self.conditions)
        object.__setattr__(self, "conditions", conditions)
        if not conditions:
            raise ModelCheckingError(
                "a FairnessConstraint needs at least one fairness condition "
                "(with no conditions every path is fair: pass fairness=None instead)"
            )
        for condition in conditions:
            if not isinstance(condition, Formula) or not is_ctl(condition):
                raise FragmentError(
                    "fairness conditions must be CTL state formulas; got %r" % (condition,)
                )
            if any(isinstance(node, (IndexExists, IndexForall)) for node in walk(condition)):
                raise FragmentError(
                    "fairness conditions must not contain index quantifiers; "
                    "instantiate them over the index set first (condition: %s)" % condition
                )

    def __len__(self) -> int:
        return len(self.conditions)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        label = self.name or "%d condition(s)" % len(self.conditions)
        return "FairnessConstraint(%s)" % label


def normalize_fairness(
    fairness: Union[None, FairnessConstraint, Iterable[Formula]],
) -> Optional[FairnessConstraint]:
    """Coerce the ``fairness=`` argument accepted throughout the library.

    ``None`` (plain CTL semantics) and :class:`FairnessConstraint` pass
    through; any other iterable of formulas is wrapped into a constraint.
    """
    if fairness is None or isinstance(fairness, FairnessConstraint):
        return fairness
    if isinstance(fairness, Formula):
        return FairnessConstraint((fairness,))
    return FairnessConstraint(tuple(fairness))
