"""Correspondence (block bisimulation with degrees) and its indexed extension."""

from repro.correspondence.blocks import BlockMatching, blocks_correspond, corresponding_path
from repro.correspondence.check import (
    find_correspondence,
    minimal_degrees,
    structures_correspond,
)
from repro.correspondence.definition import (
    assert_correspondence,
    correspondence_violations,
    is_correspondence,
    pair_clause_violations,
)
from repro.correspondence.indexed import (
    IndexRelation,
    IndexedCorrespondenceReport,
    ParameterizedVerifier,
    TransferredResult,
    indexed_correspondence,
    verify_index_relation,
)
from repro.correspondence.relation import CorrespondenceRelation

__all__ = [
    "CorrespondenceRelation",
    "correspondence_violations",
    "pair_clause_violations",
    "is_correspondence",
    "assert_correspondence",
    "find_correspondence",
    "minimal_degrees",
    "structures_correspond",
    "BlockMatching",
    "corresponding_path",
    "blocks_correspond",
    "IndexRelation",
    "IndexedCorrespondenceReport",
    "indexed_correspondence",
    "verify_index_relation",
    "ParameterizedVerifier",
    "TransferredResult",
]
