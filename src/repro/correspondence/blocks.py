"""Block partitions of corresponding paths (Lemma 1 of the paper).

Lemma 1 states that whenever ``s E s'`` and ``π`` is a path of ``M`` starting
at ``s``, there is a path ``π'`` of ``M'`` starting at ``s'`` and partitions of
the two paths into finite *blocks* ``B₁B₂…`` / ``B₁'B₂'…`` such that every
state of ``B_j`` corresponds to every state of ``B_j'``.  Blocks are runs of
states with identical labelling — exactly the stuttering that CTL* without
next-time cannot observe.

:func:`corresponding_path` makes the lemma executable: given a correspondence
relation and a finite path of the left structure it constructs a matching
right path together with the two block partitions, following the inductive
construction in the paper's proof (cases 1–3).  It is used by the tests to
validate relations produced by the decision algorithm and by the examples to
illustrate how stuttering is absorbed into blocks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.errors import CorrespondenceError
from repro.kripke.structure import KripkeStructure, State
from repro.correspondence.relation import CorrespondenceRelation

__all__ = ["BlockMatching", "corresponding_path", "blocks_correspond"]


@dataclass(frozen=True)
class BlockMatching:
    """A pair of block partitions witnessing Lemma 1 for one finite path.

    ``left_blocks`` concatenates to the input path; ``right_blocks``
    concatenates to the constructed right path; the two lists have the same
    length and ``left_blocks[j]`` corresponds block-wise to ``right_blocks[j]``.
    """

    left_blocks: Tuple[Tuple[State, ...], ...]
    right_blocks: Tuple[Tuple[State, ...], ...]

    @property
    def left_path(self) -> Tuple[State, ...]:
        """The left path (concatenation of the left blocks)."""
        return tuple(state for block in self.left_blocks for state in block)

    @property
    def right_path(self) -> Tuple[State, ...]:
        """The constructed right path (concatenation of the right blocks)."""
        return tuple(state for block in self.right_blocks for state in block)


def blocks_correspond(
    relation: CorrespondenceRelation, matching: BlockMatching
) -> bool:
    """Return ``True`` when every state of each left block corresponds to every state of the matching right block."""
    if len(matching.left_blocks) != len(matching.right_blocks):
        return False
    for left_block, right_block in zip(matching.left_blocks, matching.right_blocks):
        if not left_block or not right_block:
            return False
        for left_state in left_block:
            for right_state in right_block:
                if not relation.corresponds(left_state, right_state):
                    return False
    return True


def corresponding_path(
    left: KripkeStructure,
    right: KripkeStructure,
    relation: CorrespondenceRelation,
    path: Sequence[State],
    right_start: State | None = None,
    max_steps: int | None = None,
) -> BlockMatching:
    """Construct a right path and block partitions matching ``path`` (Lemma 1).

    Parameters
    ----------
    path:
        A finite path of ``left`` (consecutive states related by the
        transition relation) whose first state corresponds to ``right_start``.
    right_start:
        The right structure's starting state; defaults to its initial state.
    max_steps:
        Safety bound on the number of construction steps (defaults to
        ``(len(path) + 1) × (|S| + |S'|)``, the bound implied by Lemma 1).

    Raises
    ------
    CorrespondenceError
        If the relation does not allow the construction — which, by Lemma 1,
        means the relation is not a correspondence relation.
    """
    if not path:
        raise CorrespondenceError("cannot match an empty path")
    start_right = right.initial_state if right_start is None else right_start
    if not relation.corresponds(path[0], start_right):
        raise CorrespondenceError(
            "the first state of the path does not correspond to the right start state"
        )

    left_blocks: List[List[State]] = [[path[0]]]
    right_blocks: List[List[State]] = [[start_right]]
    budget = (len(path) + 1) * (left.num_states + right.num_states) if max_steps is None else max_steps

    for next_state in path[1:]:
        budget = _extend(
            left, right, relation, left_blocks, right_blocks, next_state, budget
        )

    return BlockMatching(
        left_blocks=tuple(tuple(block) for block in left_blocks),
        right_blocks=tuple(tuple(block) for block in right_blocks),
    )


def _extend(
    left: KripkeStructure,
    right: KripkeStructure,
    relation: CorrespondenceRelation,
    left_blocks: List[List[State]],
    right_blocks: List[List[State]],
    next_state: State,
    budget: int,
) -> int:
    """Extend the partitions with ``next_state``, mirroring the proof of Lemma 1."""
    while True:
        if budget <= 0:
            raise CorrespondenceError(
                "path matching did not terminate within the Lemma 1 bound; the "
                "relation is not a correspondence relation"
            )
        budget -= 1

        current_left = left_blocks[-1][-1]
        current_right = right_blocks[-1][-1]
        degree = relation.degree_or_none(current_left, current_right)
        if degree is None:
            raise CorrespondenceError(
                "internal construction reached a non-corresponding pair (%r, %r)"
                % (current_left, current_right)
            )

        # Case 1: both sides step together into corresponding states.
        for right_successor in sorted(right.successors(current_right), key=repr):
            if relation.corresponds(next_state, right_successor):
                left_blocks.append([next_state])
                right_blocks.append([right_successor])
                return budget

        # Case 3: the left state steps alone (next_state still corresponds to
        # the current right state with a smaller degree).
        stays = relation.degree_or_none(next_state, current_right)
        if stays is not None and stays < degree:
            if len(right_blocks[-1]) != 1:
                moved = right_blocks[-1].pop()
                right_blocks.append([moved])
                left_blocks.append([next_state])
            else:
                left_blocks[-1].append(next_state)
            return budget

        # Case 2: the right state steps alone with a smaller degree; afterwards
        # we retry from the new configuration.
        stepped = False
        for right_successor in sorted(right.successors(current_right), key=repr):
            partner = relation.degree_or_none(current_left, right_successor)
            if partner is not None and partner < degree:
                if len(left_blocks[-1]) != 1:
                    moved = left_blocks[-1].pop()
                    left_blocks.append([moved])
                    right_blocks.append([right_successor])
                else:
                    right_blocks[-1].append(right_successor)
                stepped = True
                break
        if stepped:
            continue

        raise CorrespondenceError(
            "pair (%r, %r) with degree %d offers no way to match the move to %r; "
            "the relation violates clause 2b" % (current_left, current_right, degree, next_state)
        )
