"""Checking a candidate relation against the Section 3 definition of correspondence.

The definition (Section 3 of the paper).  ``E ⊆ S × S' × ℕ`` is a
*correspondence relation* between ``M`` and ``M'`` when:

1. ``s0 E^k s0'`` for some ``k`` (the initial states correspond);
2. for every ``s E^k s'``:

   a. ``s`` and ``s'`` satisfy the same atomic propositions;
   b. either ``s'`` has a successor ``s1'`` with ``s E^v s1'`` for some
      ``v < k`` (the right structure takes a step on its own and the budget
      shrinks), or **every** successor ``s1`` of ``s`` satisfies
      ``s1 E^v s'`` for some ``v < k`` (the left structure takes a step on its
      own) or has a matching successor ``s1'`` of ``s'`` with ``s1 E^w s1'``
      for some ``w ≥ 0`` (both step together — the budget resets);
   c. the symmetric condition with the roles of ``s`` and ``s'`` exchanged.

   In particular a pair of degree 0 must *exactly match*: every move of one
   side is matched immediately by a move of the other.

In addition the paper requires ``E`` to be total for both ``S`` and ``S'``
(every state of either structure appears in some triple); totality is checked
by default and can be relaxed for partial relations built by hand.

The paper states the degree bounds informally ("the minimal degree of
correspondence is bounded by the number of states in the machine"); the
decision algorithm in :mod:`repro.correspondence.check` relies on the bound
``|S| + |S'|`` used in Lemma 1.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.errors import CorrespondenceError
from repro.kripke.structure import KripkeStructure, State
from repro.correspondence.relation import CorrespondenceRelation

__all__ = [
    "correspondence_violations",
    "is_correspondence",
    "assert_correspondence",
    "pair_clause_violations",
]

#: Optional override for how a state's label is read when comparing labels.
LabelKey = Callable[[KripkeStructure, State], object]


def _default_label_key(structure: KripkeStructure, state: State) -> object:
    return structure.label(state)


def pair_clause_violations(
    left: KripkeStructure,
    right: KripkeStructure,
    relation: CorrespondenceRelation,
    left_state: State,
    right_state: State,
    label_key: Optional[LabelKey] = None,
) -> List[str]:
    """Return the clause violations of a single pair ``(left_state, right_state)``.

    An empty list means the pair satisfies clauses 2a, 2b and 2c with the
    degree recorded in ``relation``.
    """
    read_label = label_key or _default_label_key
    degree = relation.degree(left_state, right_state)
    violations: List[str] = []

    if read_label(left, left_state) != read_label(right, right_state):
        violations.append(
            "clause 2a: labels differ for pair (%r, %r): %r vs %r"
            % (
                left_state,
                right_state,
                read_label(left, left_state),
                read_label(right, right_state),
            )
        )

    if not _clause_2b(left, right, relation, left_state, right_state, degree):
        violations.append(
            "clause 2b: pair (%r, %r) with degree %d cannot match the moves of the "
            "left state" % (left_state, right_state, degree)
        )
    if not _clause_2c(left, right, relation, left_state, right_state, degree):
        violations.append(
            "clause 2c: pair (%r, %r) with degree %d cannot match the moves of the "
            "right state" % (left_state, right_state, degree)
        )
    return violations


def _clause_2b(
    left: KripkeStructure,
    right: KripkeStructure,
    relation: CorrespondenceRelation,
    left_state: State,
    right_state: State,
    degree: int,
) -> bool:
    # First disjunct: the right structure steps on its own with a smaller budget.
    for right_successor in right.successors(right_state):
        partner_degree = relation.degree_or_none(left_state, right_successor)
        if partner_degree is not None and partner_degree < degree:
            return True
    # Second disjunct: every move of the left state is accounted for.
    for left_successor in left.successors(left_state):
        stays = relation.degree_or_none(left_successor, right_state)
        if stays is not None and stays < degree:
            continue
        if any(
            relation.corresponds(left_successor, right_successor)
            for right_successor in right.successors(right_state)
        ):
            continue
        return False
    return True


def _clause_2c(
    left: KripkeStructure,
    right: KripkeStructure,
    relation: CorrespondenceRelation,
    left_state: State,
    right_state: State,
    degree: int,
) -> bool:
    # Symmetric to clause 2b with the roles of the two structures exchanged.
    for left_successor in left.successors(left_state):
        partner_degree = relation.degree_or_none(left_successor, right_state)
        if partner_degree is not None and partner_degree < degree:
            return True
    for right_successor in right.successors(right_state):
        stays = relation.degree_or_none(left_state, right_successor)
        if stays is not None and stays < degree:
            continue
        if any(
            relation.corresponds(left_successor, right_successor)
            for left_successor in left.successors(left_state)
        ):
            continue
        return False
    return True


def correspondence_violations(
    left: KripkeStructure,
    right: KripkeStructure,
    relation: CorrespondenceRelation,
    require_total: bool = True,
    label_key: Optional[LabelKey] = None,
    max_reported: int = 50,
) -> List[str]:
    """Check ``relation`` against the full definition; return human-readable violations.

    Parameters
    ----------
    require_total:
        When true (the default, matching the paper) every state of both
        structures must appear in some pair.
    label_key:
        Optional override for reading a state's label, used by the indexed
        correspondence to compare reduced labels.
    max_reported:
        Stop after this many violations (the relation for a large structure
        can produce an enormous report otherwise).
    """
    violations: List[str] = []

    if not relation.corresponds(left.initial_state, right.initial_state):
        violations.append("clause 1: the initial states do not correspond")

    if require_total:
        uncovered_left = left.states - relation.left_states
        uncovered_right = right.states - relation.right_states
        if uncovered_left:
            violations.append(
                "totality: %d left state(s) appear in no pair (e.g. %r)"
                % (len(uncovered_left), next(iter(uncovered_left)))
            )
        if uncovered_right:
            violations.append(
                "totality: %d right state(s) appear in no pair (e.g. %r)"
                % (len(uncovered_right), next(iter(uncovered_right)))
            )

    for left_state, right_state in relation.pairs():
        if len(violations) >= max_reported:
            violations.append("... further violations suppressed")
            break
        violations.extend(
            pair_clause_violations(left, right, relation, left_state, right_state, label_key)
        )
    return violations


def is_correspondence(
    left: KripkeStructure,
    right: KripkeStructure,
    relation: CorrespondenceRelation,
    require_total: bool = True,
    label_key: Optional[LabelKey] = None,
) -> bool:
    """Return ``True`` when ``relation`` is a correspondence relation between the structures."""
    return not correspondence_violations(
        left, right, relation, require_total=require_total, label_key=label_key
    )


def assert_correspondence(
    left: KripkeStructure,
    right: KripkeStructure,
    relation: CorrespondenceRelation,
    require_total: bool = True,
    label_key: Optional[LabelKey] = None,
) -> None:
    """Raise :class:`CorrespondenceError` unless ``relation`` satisfies the definition."""
    violations = correspondence_violations(
        left, right, relation, require_total=require_total, label_key=label_key
    )
    if violations:
        raise CorrespondenceError(
            "relation is not a correspondence relation: %s"
            % "; ".join(violations[:5]) + (" ..." if len(violations) > 5 else "")
        )
