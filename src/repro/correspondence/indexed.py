"""Indexed correspondence and the parameterized-verification workflow (Section 4).

Two indexed structures ``M`` (index set ``I``) and ``M'`` (index set ``I'``)
*(i, i')-correspond* when their reductions ``M|_i`` and ``M'|_{i'}``
correspond in the Section 3 sense.  Given a relation ``IN ⊆ I × I'`` that is
total for both index sets, the ICTL* correspondence theorem (Theorem 5) says:
if ``M`` and ``M'`` (i, i')-correspond for every ``(i, i') ∈ IN``, then the
two structures satisfy exactly the same closed ICTL* formulas.

This module provides:

* :func:`indexed_correspondence` — decide a single (i, i')-correspondence;
* :func:`verify_index_relation` — check every pair of an ``IN`` relation and
  report the per-pair relations;
* :class:`ParameterizedVerifier` — the end-to-end workflow of Section 5:
  establish the correspondence between a small instance and a large instance
  once, then model check ICTL* properties on the *small* instance and transfer
  the verdicts to the large one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from repro.errors import CorrespondenceError
from repro.kripke.indexed import IndexedKripkeStructure
from repro.kripke.reduction import reduce_to_index
from repro.logic.ast import Formula
from repro.logic.syntax import assert_restricted_ictl
from repro.mc.indexed import ICTLStarModelChecker
from repro.correspondence.check import find_correspondence
from repro.correspondence.relation import CorrespondenceRelation

__all__ = [
    "IndexRelation",
    "IndexedCorrespondenceReport",
    "indexed_correspondence",
    "verify_index_relation",
    "TransferredResult",
    "ParameterizedVerifier",
]


@dataclass(frozen=True)
class IndexRelation:
    """A relation ``IN ⊆ I × I'`` between the index sets of two structures."""

    pairs: FrozenSet[Tuple[int, int]]

    @classmethod
    def from_pairs(cls, pairs: Iterable[Tuple[int, int]]) -> "IndexRelation":
        """Build an index relation from an iterable of ``(i, i')`` pairs."""
        return cls(frozenset((int(a), int(b)) for a, b in pairs))

    @classmethod
    def pivot(cls, left_values: Iterable[int], right_values: Iterable[int], pivot: int = 1) -> "IndexRelation":
        """The Section 5 pattern: relate ``pivot`` to ``pivot`` and every other left value to every other right value.

        For the token ring the paper uses
        ``IN = {(1, 1)} ∪ {(2, i) : i ∈ I_r − {1}}``; with ``left_values = {1, 2}``
        this classmethod builds exactly that relation.
        """
        left = sorted(set(left_values))
        right = sorted(set(right_values))
        if pivot not in left or pivot not in right:
            raise CorrespondenceError("the pivot index must belong to both index sets")
        pairs = {(pivot, pivot)}
        other_left = [value for value in left if value != pivot]
        other_right = [value for value in right if value != pivot]
        if other_left and not other_right or other_right and not other_left:
            raise CorrespondenceError(
                "cannot build a total pivot relation: one side has only the pivot index"
            )
        for left_value in other_left:
            for right_value in other_right:
                pairs.add((left_value, right_value))
        return cls(frozenset(pairs))

    def is_total_for(self, left_values: Iterable[int], right_values: Iterable[int]) -> bool:
        """Return ``True`` when every index value of both sides appears in some pair."""
        left_covered = {pair[0] for pair in self.pairs}
        right_covered = {pair[1] for pair in self.pairs}
        return all(value in left_covered for value in left_values) and all(
            value in right_covered for value in right_values
        )

    def __iter__(self):
        return iter(sorted(self.pairs))

    def __len__(self) -> int:
        return len(self.pairs)


@dataclass
class IndexedCorrespondenceReport:
    """Outcome of checking every pair of an ``IN`` relation.

    ``relations`` maps each ``(i, i')`` pair to the correspondence relation
    found between the reductions, or ``None`` when the reductions do not
    correspond.  ``holds`` is true when *every* pair corresponds and the
    ``IN`` relation is total for both index sets — i.e. exactly when the
    hypotheses of Theorem 5 are established.
    """

    index_relation: IndexRelation
    relations: Dict[Tuple[int, int], Optional[CorrespondenceRelation]] = field(default_factory=dict)
    total: bool = False

    @property
    def holds(self) -> bool:
        """True when the hypotheses of the ICTL* correspondence theorem are established."""
        return self.total and all(relation is not None for relation in self.relations.values())

    @property
    def failing_pairs(self) -> List[Tuple[int, int]]:
        """The index pairs whose reductions do not correspond."""
        return sorted(pair for pair, relation in self.relations.items() if relation is None)


def indexed_correspondence(
    left: IndexedKripkeStructure,
    right: IndexedKripkeStructure,
    left_index: int,
    right_index: int,
    max_degree: Optional[int] = None,
) -> Optional[CorrespondenceRelation]:
    """Decide whether ``left`` and ``right`` (left_index, right_index)-correspond.

    Returns the correspondence relation between the reductions
    ``left|_{left_index}`` and ``right|_{right_index}`` (with minimal degrees),
    or ``None`` when they do not correspond.
    """
    reduced_left = reduce_to_index(left, left_index)
    reduced_right = reduce_to_index(right, right_index)
    return find_correspondence(reduced_left, reduced_right, max_degree=max_degree)


def verify_index_relation(
    left: IndexedKripkeStructure,
    right: IndexedKripkeStructure,
    index_relation: IndexRelation,
    max_degree: Optional[int] = None,
) -> IndexedCorrespondenceReport:
    """Check every pair of ``index_relation`` and collect the results."""
    report = IndexedCorrespondenceReport(index_relation=index_relation)
    report.total = index_relation.is_total_for(left.index_values, right.index_values)
    for left_index, right_index in index_relation:
        report.relations[(left_index, right_index)] = indexed_correspondence(
            left, right, left_index, right_index, max_degree=max_degree
        )
    return report


@dataclass(frozen=True)
class TransferredResult:
    """The verdict of checking a formula on the small instance, transferred to the large one."""

    formula: Formula
    holds: bool
    checked_on: str
    transferred_to: str

    def __bool__(self) -> bool:
        return self.holds


class ParameterizedVerifier:
    """The Section 5 workflow: verify a small instance, conclude for a large one.

    The verifier is constructed with a *small* indexed structure (e.g. the
    two-process token ring ``M_2``), a *large* indexed structure (e.g.
    ``M_r``), and an index relation ``IN``.  :meth:`establish` checks the
    hypotheses of the ICTL* correspondence theorem once;
    :meth:`check` then model checks closed restricted ICTL* formulas on the
    small structure only and, by Theorem 5, the verdicts carry over to the
    large structure.
    """

    def __init__(
        self,
        small: IndexedKripkeStructure,
        large: IndexedKripkeStructure,
        index_relation: IndexRelation,
        max_degree: Optional[int] = None,
    ) -> None:
        self._small = small
        self._large = large
        self._index_relation = index_relation
        self._max_degree = max_degree
        self._report: Optional[IndexedCorrespondenceReport] = None
        self._checker = ICTLStarModelChecker(small)

    @property
    def small(self) -> IndexedKripkeStructure:
        """The small instance that is actually model checked."""
        return self._small

    @property
    def large(self) -> IndexedKripkeStructure:
        """The large instance to which verdicts are transferred."""
        return self._large

    @property
    def report(self) -> Optional[IndexedCorrespondenceReport]:
        """The correspondence report, once :meth:`establish` has run."""
        return self._report

    def establish(self) -> IndexedCorrespondenceReport:
        """Establish the correspondence hypotheses; memoised across calls."""
        if self._report is None:
            self._report = verify_index_relation(
                self._small, self._large, self._index_relation, max_degree=self._max_degree
            )
        return self._report

    def check(self, formula: Formula) -> TransferredResult:
        """Model check a closed restricted ICTL* formula on the small instance and transfer the verdict.

        Raises
        ------
        CorrespondenceError
            If the correspondence could not be established — in that case the
            theorem gives no transfer and the caller must check the large
            instance directly.
        """
        assert_restricted_ictl(formula)
        report = self.establish()
        if not report.holds:
            raise CorrespondenceError(
                "the structures do not (i, i')-correspond for every pair of IN "
                "(failing pairs: %s); verdicts cannot be transferred" % report.failing_pairs
            )
        holds = self._checker.check(formula)
        return TransferredResult(
            formula=formula,
            holds=holds,
            checked_on=self._small.name or "small structure",
            transferred_to=self._large.name or "large structure",
        )

    def check_all(self, formulas: Iterable[Formula]) -> List[TransferredResult]:
        """Check a batch of formulas; see :meth:`check`."""
        return [self.check(formula) for formula in formulas]
