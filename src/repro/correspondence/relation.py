"""Degree-annotated correspondence relations (Section 3 of the paper).

A correspondence relation between two Kripke structures ``M = (S, R, L, s0)``
and ``M' = (S', R', L', s0')`` is a set of triples ``E ⊆ S × S' × ℕ``.  A
triple ``(s, s', k)`` — written ``s E^k s'`` — says that ``s`` behaves like
``s'`` and that ``k`` bounds the number of transitions either side may take
before the two states *exactly match* again.  Degree 0 means exact matching:
every move of one state is matched immediately by a move of the other.

This module stores a correspondence relation as a mapping from state pairs to
their (single) degree.  The definition checker
(:mod:`repro.correspondence.definition`) interprets the stored degree as the
``k`` of the triple; the decision algorithm
(:mod:`repro.correspondence.check`) always stores *minimal* degrees.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, Mapping, Optional, Tuple

from repro.errors import CorrespondenceError
from repro.kripke.structure import State

__all__ = ["CorrespondenceRelation"]

Pair = Tuple[State, State]


class CorrespondenceRelation:
    """An immutable degree-annotated relation between the states of two structures."""

    def __init__(self, degrees: Mapping[Pair, int]) -> None:
        cleaned: Dict[Pair, int] = {}
        for pair, degree in degrees.items():
            if degree < 0:
                raise CorrespondenceError(
                    "correspondence degrees must be non-negative; pair %r got %d" % (pair, degree)
                )
            cleaned[pair] = int(degree)
        self._degrees = cleaned

    # -- construction helpers --------------------------------------------------

    @classmethod
    def from_pairs(cls, pairs: Iterable[Pair], degree: int = 0) -> "CorrespondenceRelation":
        """Build a relation in which every pair carries the same degree."""
        return cls({pair: degree for pair in pairs})

    # -- queries ----------------------------------------------------------------

    def corresponds(self, left_state: State, right_state: State) -> bool:
        """Return ``True`` when the pair appears in the relation (with any degree)."""
        return (left_state, right_state) in self._degrees

    def degree(self, left_state: State, right_state: State) -> int:
        """Return the degree recorded for the pair; raises if the pair is absent."""
        try:
            return self._degrees[(left_state, right_state)]
        except KeyError:
            raise CorrespondenceError(
                "states %r and %r do not correspond" % (left_state, right_state)
            ) from None

    def degree_or_none(self, left_state: State, right_state: State) -> Optional[int]:
        """Return the degree for the pair, or ``None`` when the pair is absent."""
        return self._degrees.get((left_state, right_state))

    def pairs(self) -> Iterator[Pair]:
        """Iterate over the state pairs in the relation."""
        return iter(self._degrees)

    def items(self) -> Iterator[Tuple[Pair, int]]:
        """Iterate over ``((left, right), degree)`` entries."""
        return iter(self._degrees.items())

    @property
    def left_states(self) -> FrozenSet[State]:
        """The left-hand states covered by the relation."""
        return frozenset(pair[0] for pair in self._degrees)

    @property
    def right_states(self) -> FrozenSet[State]:
        """The right-hand states covered by the relation."""
        return frozenset(pair[1] for pair in self._degrees)

    @property
    def max_degree(self) -> int:
        """The largest degree in the relation (0 for an empty relation)."""
        return max(self._degrees.values(), default=0)

    def partners_of_left(self, left_state: State) -> FrozenSet[State]:
        """The right-hand states related to ``left_state``."""
        return frozenset(right for (left, right) in self._degrees if left == left_state)

    def partners_of_right(self, right_state: State) -> FrozenSet[State]:
        """The left-hand states related to ``right_state``."""
        return frozenset(left for (left, right) in self._degrees if right == right_state)

    def is_total_for(
        self, left_states: Iterable[State], right_states: Iterable[State]
    ) -> bool:
        """Return ``True`` when every given left and right state appears in some pair."""
        covered_left = self.left_states
        covered_right = self.right_states
        return all(state in covered_left for state in left_states) and all(
            state in covered_right for state in right_states
        )

    # -- dunder helpers -----------------------------------------------------------

    def __contains__(self, pair: Pair) -> bool:
        return pair in self._degrees

    def __len__(self) -> int:
        return len(self._degrees)

    def __iter__(self) -> Iterator[Pair]:
        return iter(self._degrees)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CorrespondenceRelation):
            return NotImplemented
        return self._degrees == other._degrees

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "<CorrespondenceRelation: %d pairs, max degree %d>" % (
            len(self._degrees),
            self.max_degree,
        )

    def as_dict(self) -> Dict[Pair, int]:
        """Return a copy of the underlying pair → degree mapping."""
        return dict(self._degrees)
