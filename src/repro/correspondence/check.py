"""Deciding whether two structures correspond, and with which minimal degrees.

The paper notes that its definition of correspondence "is not constructive"
and defers an algorithm to Browne, Clarke & Grumberg (1987).  This module
implements a decision procedure in the same spirit:

1. start from the *label-compatible* pair relation
   ``R₀ = {(s, s') : L(s) = L'(s')}`` — no pair outside it can ever correspond
   because of clause 2a;
2. given a candidate relation ``R``, compute the *minimal degree* of every
   pair by rank iteration: a pair gets degree ``k`` at the first ``k`` for
   which clauses 2b and 2c are satisfiable using (i) pairs of ``R`` for the
   "both sides step together, any degree" sub-clauses and (ii) pairs already
   assigned a degree ``< k`` for the "one side steps alone, budget shrinks"
   sub-clauses.  Degrees are bounded by ``|S| + |S'|`` (the bound used in the
   paper's Lemma 1), so the iteration stops after that many rounds;
3. remove from ``R`` every pair that received no finite degree and repeat
   until nothing changes.

At the fixpoint the surviving pairs, annotated with their minimal degrees,
satisfy the definition by construction (the library re-validates the result
with :func:`repro.correspondence.definition.assert_correspondence` in its own
tests).  Two structures *correspond* when the fixpoint relation contains the
pair of initial states and is total for both state sets.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Set, Tuple

from repro.kripke.structure import KripkeStructure, State
from repro.correspondence.relation import CorrespondenceRelation

__all__ = ["find_correspondence", "structures_correspond", "minimal_degrees"]

Pair = Tuple[State, State]
LabelKey = Callable[[KripkeStructure, State], object]


def _default_label_key(structure: KripkeStructure, state: State) -> object:
    return structure.label(state)


def _label_compatible_pairs(
    left: KripkeStructure, right: KripkeStructure, label_key: LabelKey
) -> Set[Pair]:
    right_by_label: Dict[object, Set[State]] = {}
    for right_state in right.states:
        right_by_label.setdefault(label_key(right, right_state), set()).add(right_state)
    pairs: Set[Pair] = set()
    for left_state in left.states:
        for right_state in right_by_label.get(label_key(left, left_state), ()):
            pairs.add((left_state, right_state))
    return pairs


def minimal_degrees(
    left: KripkeStructure,
    right: KripkeStructure,
    candidate_pairs: Set[Pair],
    max_degree: Optional[int] = None,
) -> Dict[Pair, int]:
    """Compute minimal degrees for ``candidate_pairs`` relative to themselves.

    A pair receives the smallest ``k ≤ max_degree`` at which clauses 2b and 2c
    hold when "corresponds with any degree" is read as membership in
    ``candidate_pairs`` and "corresponds with degree < k" as having already
    received a smaller minimal degree.  Pairs that receive no degree are
    absent from the result.
    """
    bound = left.num_states + right.num_states if max_degree is None else max_degree
    degrees: Dict[Pair, int] = {}
    unassigned = set(candidate_pairs)

    for level in range(bound + 1):
        newly_assigned = []
        for pair in unassigned:
            left_state, right_state = pair
            if _clause_2b(left, right, candidate_pairs, degrees, left_state, right_state, level) and _clause_2c(
                left, right, candidate_pairs, degrees, left_state, right_state, level
            ):
                newly_assigned.append(pair)
        if not newly_assigned and level > 0:
            # No pair can acquire a degree at a later level either, because the
            # clause conditions only get harder to satisfy once the set of
            # already-assigned smaller degrees stops growing.
            break
        for pair in newly_assigned:
            degrees[pair] = level
            unassigned.discard(pair)
        if not unassigned:
            break
    return degrees


def _clause_2b(
    left: KripkeStructure,
    right: KripkeStructure,
    candidates: Set[Pair],
    degrees: Dict[Pair, int],
    left_state: State,
    right_state: State,
    level: int,
) -> bool:
    for right_successor in right.successors(right_state):
        assigned = degrees.get((left_state, right_successor))
        if assigned is not None and assigned < level:
            return True
    for left_successor in left.successors(left_state):
        stays = degrees.get((left_successor, right_state))
        if stays is not None and stays < level:
            continue
        if any(
            (left_successor, right_successor) in candidates
            for right_successor in right.successors(right_state)
        ):
            continue
        return False
    return True


def _clause_2c(
    left: KripkeStructure,
    right: KripkeStructure,
    candidates: Set[Pair],
    degrees: Dict[Pair, int],
    left_state: State,
    right_state: State,
    level: int,
) -> bool:
    for left_successor in left.successors(left_state):
        assigned = degrees.get((left_successor, right_state))
        if assigned is not None and assigned < level:
            return True
    for right_successor in right.successors(right_state):
        stays = degrees.get((left_state, right_successor))
        if stays is not None and stays < level:
            continue
        if any(
            (left_successor, right_successor) in candidates
            for left_successor in left.successors(left_state)
        ):
            continue
        return False
    return True


def find_correspondence(
    left: KripkeStructure,
    right: KripkeStructure,
    max_degree: Optional[int] = None,
    require_initial: bool = True,
    require_total: bool = True,
    label_key: Optional[LabelKey] = None,
) -> Optional[CorrespondenceRelation]:
    """Compute the coarsest correspondence relation between ``left`` and ``right``.

    Returns the relation annotated with minimal degrees, or ``None`` when the
    structures do not correspond (the initial states are unrelated or, when
    ``require_total`` is set, some state of either structure corresponds to
    nothing).

    Parameters
    ----------
    max_degree:
        Optional cap on the degrees considered; defaults to ``|S| + |S'|``.
    require_initial / require_total:
        Which of the definition's global conditions must hold for the result
        to count as "the structures correspond".  With both set to ``False``
        the fixpoint relation is returned even when it is empty.
    label_key:
        Optional override for reading a state's label (used by the indexed
        correspondence to compare reduced labels).
    """
    key = label_key or _default_label_key
    candidates = _label_compatible_pairs(left, right, key)

    while True:
        degrees = minimal_degrees(left, right, candidates, max_degree=max_degree)
        surviving = set(degrees)
        if surviving == candidates:
            break
        candidates = surviving

    relation = CorrespondenceRelation(degrees)
    if require_initial and not relation.corresponds(left.initial_state, right.initial_state):
        return None
    if require_total and not relation.is_total_for(left.states, right.states):
        return None
    return relation


def structures_correspond(
    left: KripkeStructure,
    right: KripkeStructure,
    max_degree: Optional[int] = None,
    label_key: Optional[LabelKey] = None,
) -> bool:
    """Return ``True`` when the two structures correspond (Section 3 sense)."""
    return (
        find_correspondence(
            left, right, max_degree=max_degree, label_key=label_key
        )
        is not None
    )
