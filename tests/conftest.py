"""Shared fixtures for the test-suite.

Expensive structures (the token rings, the example families) are built once
per session; everything else is cheap enough to construct per test.
"""

from __future__ import annotations

import os
import sys

import pytest

# Allow running the tests from a source checkout without installation.
_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:  # pragma: no cover - environment dependent
    sys.path.insert(0, _SRC)

from repro.kripke import KripkeStructure  # noqa: E402
from repro.systems import barrier, figures, round_robin, token_ring  # noqa: E402


@pytest.fixture()
def sanitizers():
    """Enable the BDD and SAT runtime sanitizers for one test, then restore.

    Opt-in per test (``def test_x(sanitizers): ...``); the whole suite can
    instead run sanitized via ``REPRO_SANITIZE=1`` (see docs/CORRECTNESS.md).
    """
    import repro.bdd.sanitize as bdd_sanitize
    import repro.sat.sanitize as sat_sanitize

    previous = (bdd_sanitize.MODE, sat_sanitize.MODE)
    bdd_sanitize.enable(True)
    sat_sanitize.enable(True)
    try:
        yield
    finally:
        bdd_sanitize.MODE, sat_sanitize.MODE = previous


@pytest.fixture(scope="session")
def toggle_structure() -> KripkeStructure:
    """A minimal two-state structure alternating between labels {p} and {q}."""
    return KripkeStructure(
        states=["on", "off"],
        transitions=[("on", "off"), ("off", "on")],
        labeling={"on": {"p"}, "off": {"q"}},
        initial_state="on",
        name="toggle",
    )


@pytest.fixture(scope="session")
def branching_structure() -> KripkeStructure:
    """A small branching structure used by the CTL/CTL* tests.

    ``a`` branches to ``b`` (label p) and ``c`` (label q); ``b`` loops to
    itself; ``c`` goes to ``d`` (label p, q) which loops back to ``a``.
    """
    return KripkeStructure(
        states=["a", "b", "c", "d"],
        transitions=[("a", "b"), ("a", "c"), ("b", "b"), ("c", "d"), ("d", "a")],
        labeling={"a": set(), "b": {"p"}, "c": {"q"}, "d": {"p", "q"}},
        initial_state="a",
        name="branching",
    )


@pytest.fixture(scope="session")
def fig31_pair():
    """The Fig. 3.1 structures (left, right)."""
    return figures.fig31_structures()


@pytest.fixture(scope="session")
def ring2():
    """The two-process token ring M_2."""
    return token_ring.build_token_ring(2)


@pytest.fixture(scope="session")
def ring3():
    """The three-process token ring M_3."""
    return token_ring.build_token_ring(3)


@pytest.fixture(scope="session")
def ring4():
    """The four-process token ring M_4."""
    return token_ring.build_token_ring(4)


@pytest.fixture(scope="session")
def round_robin2():
    """The two-process round-robin scheduler."""
    return round_robin.build_round_robin(2)


@pytest.fixture(scope="session")
def round_robin4():
    """The four-process round-robin scheduler."""
    return round_robin.build_round_robin(4)


@pytest.fixture(scope="session")
def barrier2():
    """The two-worker barrier."""
    return barrier.build_barrier(2)


@pytest.fixture(scope="session")
def barrier3():
    """The three-worker barrier."""
    return barrier.build_barrier(3)
