"""Unit tests for the deterministic chaos-injection harness.

Only the ``garble`` fault is ever armed in-process here — ``kill``,
``hang``, and ``oom`` would take the test process down with them; their
end-to-end behaviour is covered through worker processes in
``test_runtime_supervisor.py`` and ``test_runtime_portfolio.py``.
"""

import pytest

from repro.runtime import chaos, limits


@pytest.fixture(autouse=True)
def _disarm():
    yield
    chaos.disable()


class TestChaosConfig:
    def test_parse_full_spec(self):
        config = chaos.ChaosConfig.parse("kill:0.2,hang:0.1,oom:0.1,garble:0.05", seed=7)
        assert config.rates == {"kill": 0.2, "hang": 0.1, "oom": 0.1, "garble": 0.05}
        assert config.seed == 7
        assert config.is_enabled()

    def test_empty_spec_is_disabled(self):
        config = chaos.ChaosConfig.parse("")
        assert not config.is_enabled()
        assert config.as_spec() == ""
        assert all(rate == 0.0 for rate in config.rates.values())

    @pytest.mark.parametrize(
        "spec",
        [
            "kill",  # no rate
            "kill:lots",  # non-numeric rate
            "frobnicate:0.5",  # unknown fault kind
            "kill:1.5",  # out of [0, 1]
            "hang:-0.1",
        ],
    )
    def test_malformed_specs_are_rejected(self, spec):
        with pytest.raises(ValueError):
            chaos.ChaosConfig.parse(spec)

    def test_as_spec_roundtrips(self):
        config = chaos.ChaosConfig({"kill": 0.25, "garble": 1.0}, seed=3)
        again = chaos.ChaosConfig.parse(config.as_spec(), seed=3)
        assert again.rates == config.rates

    def test_from_env(self):
        assert chaos.from_env({}) is None
        assert chaos.from_env({"REPRO_CHAOS": "  "}) is None
        config = chaos.from_env({"REPRO_CHAOS": "kill:1.0", "REPRO_CHAOS_SEED": "11"})
        assert config is not None
        assert config.rates["kill"] == 1.0
        assert config.seed == 11


class TestChaosInjector:
    def test_same_seed_and_scope_draws_the_same_schedule(self):
        config = chaos.ChaosConfig({"kill": 0.5, "hang": 0.5}, seed=42)
        one = chaos.ChaosInjector(config, scope="task#1")
        two = chaos.ChaosInjector(config, scope="task#1")
        assert one.fault == two.fault
        assert one.trigger_at == two.trigger_at

    def test_different_scopes_draw_fresh_schedules(self):
        config = chaos.ChaosConfig({"kill": 0.5}, seed=42)
        schedules = {
            (injector.fault, injector.trigger_at)
            for injector in (
                chaos.ChaosInjector(config, scope="task#%d" % attempt)
                for attempt in range(32)
            )
        }
        # At rate 0.5 over 32 attempts, both "no fault" and several distinct
        # trigger points must appear — a restart is not doomed to re-kill.
        assert (None, 0) in schedules
        assert len(schedules) > 2

    def test_certain_rate_always_schedules_the_fault(self):
        config = chaos.ChaosConfig({"garble": 1.0}, seed=0)
        for attempt in range(8):
            injector = chaos.ChaosInjector(config, scope="t#%d" % attempt)
            assert injector.fault == "garble"
            assert 1 <= injector.trigger_at <= chaos.TRIGGER_WINDOW

    def test_should_garble_only_for_garble_faults(self):
        killer = chaos.ChaosInjector(chaos.ChaosConfig({"kill": 1.0}), scope="s")
        assert killer.fault == "kill"
        assert not killer.should_garble()
        garbler = chaos.ChaosInjector(chaos.ChaosConfig({"garble": 1.0}), scope="s")
        # Arms even when no checkpoint ever ran: short solves cannot dodge it.
        assert garbler.should_garble()
        assert garbler.fired == "garble"

    def test_garble_flips_exactly_one_byte_deterministically(self):
        config = chaos.ChaosConfig({"garble": 1.0}, seed=9)
        payload = b"the one true verdict"
        one = chaos.ChaosInjector(config, scope="t#1").garble_payload(payload)
        two = chaos.ChaosInjector(config, scope="t#1").garble_payload(payload)
        assert one == two
        assert one != payload
        assert len(one) == len(payload)
        assert sum(a != b for a, b in zip(one, payload)) == 1
        other_scope = chaos.ChaosInjector(config, scope="t#2").garble_payload(payload)
        assert other_scope != payload  # may or may not equal `one`; must corrupt

    def test_empty_payload_survives_garbling(self):
        injector = chaos.ChaosInjector(chaos.ChaosConfig({"garble": 1.0}), scope="s")
        assert injector.garble_payload(b"") == b""


class TestHookWiring:
    def test_enable_installs_the_checkpoint_hook(self):
        config = chaos.ChaosConfig({"garble": 1.0}, seed=1)
        injector = chaos.enable(config, scope="wiring#1")
        assert chaos.current_injector() is injector
        for _ in range(chaos.TRIGGER_WINDOW):
            limits.checkpoint("test.site")
        assert injector.checkpoints_seen >= injector.trigger_at
        assert injector.fired == "garble"

    def test_disable_uninstalls_and_returns_the_injector(self):
        installed = chaos.enable(chaos.ChaosConfig({"garble": 1.0}), scope="s")
        assert chaos.disable() is installed
        assert chaos.current_injector() is None
        limits.checkpoint("test.site")  # back to the disarmed fast path
        assert installed.checkpoints_seen == 0
        assert chaos.disable() is None  # idempotent
