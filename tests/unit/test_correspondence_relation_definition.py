"""Unit tests for the correspondence relation datatype and the definition checker."""

import pytest

from repro.errors import CorrespondenceError
from repro.kripke.structure import KripkeStructure
from repro.correspondence.definition import (
    assert_correspondence,
    correspondence_violations,
    is_correspondence,
    pair_clause_violations,
)
from repro.correspondence.relation import CorrespondenceRelation


# ---------------------------------------------------------------------------
# CorrespondenceRelation
# ---------------------------------------------------------------------------


def test_relation_basic_queries():
    relation = CorrespondenceRelation({("a", "x"): 0, ("b", "y"): 2})
    assert relation.corresponds("a", "x")
    assert not relation.corresponds("a", "y")
    assert relation.degree("b", "y") == 2
    assert relation.degree_or_none("a", "y") is None
    assert set(relation.pairs()) == {("a", "x"), ("b", "y")}
    assert relation.left_states == frozenset({"a", "b"})
    assert relation.right_states == frozenset({"x", "y"})
    assert relation.max_degree == 2
    assert len(relation) == 2
    assert ("a", "x") in relation
    assert dict(relation.items())[("a", "x")] == 0


def test_relation_partners():
    relation = CorrespondenceRelation({("a", "x"): 0, ("a", "y"): 1, ("b", "y"): 0})
    assert relation.partners_of_left("a") == frozenset({"x", "y"})
    assert relation.partners_of_right("y") == frozenset({"a", "b"})


def test_relation_totality_check():
    relation = CorrespondenceRelation({("a", "x"): 0})
    assert relation.is_total_for(["a"], ["x"])
    assert not relation.is_total_for(["a", "b"], ["x"])
    assert not relation.is_total_for(["a"], ["x", "y"])


def test_relation_degree_missing_pair_raises():
    relation = CorrespondenceRelation({("a", "x"): 0})
    with pytest.raises(CorrespondenceError):
        relation.degree("a", "zzz")


def test_relation_rejects_negative_degrees():
    with pytest.raises(CorrespondenceError):
        CorrespondenceRelation({("a", "x"): -1})


def test_relation_from_pairs_and_equality():
    first = CorrespondenceRelation.from_pairs([("a", "x"), ("b", "y")], degree=1)
    second = CorrespondenceRelation({("a", "x"): 1, ("b", "y"): 1})
    assert first == second
    assert first != CorrespondenceRelation({})
    assert first.as_dict() == {("a", "x"): 1, ("b", "y"): 1}


def test_empty_relation_max_degree_is_zero():
    assert CorrespondenceRelation({}).max_degree == 0


# ---------------------------------------------------------------------------
# The definition checker
# ---------------------------------------------------------------------------


def identical_pair():
    structure = KripkeStructure(
        states=["a", "b"],
        transitions=[("a", "b"), ("b", "a")],
        labeling={"a": {"p"}, "b": {"q"}},
        initial_state="a",
    )
    other = KripkeStructure(
        states=["a2", "b2"],
        transitions=[("a2", "b2"), ("b2", "a2")],
        labeling={"a2": {"p"}, "b2": {"q"}},
        initial_state="a2",
    )
    return structure, other


def test_isomorphic_structures_identity_relation_is_correspondence():
    left, right = identical_pair()
    relation = CorrespondenceRelation({("a", "a2"): 0, ("b", "b2"): 0})
    assert is_correspondence(left, right, relation)
    assert_correspondence(left, right, relation)
    assert correspondence_violations(left, right, relation) == []


def test_label_mismatch_is_reported():
    left, right = identical_pair()
    relation = CorrespondenceRelation({("a", "b2"): 0, ("b", "a2"): 0, ("a", "a2"): 0, ("b", "b2"): 0})
    violations = correspondence_violations(left, right, relation)
    assert any("labels differ" in violation for violation in violations)
    assert not is_correspondence(left, right, relation)


def test_missing_initial_pair_is_reported():
    left, right = identical_pair()
    relation = CorrespondenceRelation({("b", "b2"): 0})
    violations = correspondence_violations(left, right, relation, require_total=False)
    assert any("initial states" in violation for violation in violations)


def test_totality_violations_reported_and_optional():
    left, right = identical_pair()
    relation = CorrespondenceRelation({("a", "a2"): 0})
    violations = correspondence_violations(left, right, relation)
    assert any("totality" in violation for violation in violations)
    # Clause checks still pass for the single pair when totality is waived...
    partial = correspondence_violations(left, right, relation, require_total=False)
    # ...but the pair itself must still match moves: ("a","a2") needs its
    # successors ("b","b2") to be related, which they are not.
    assert any("clause" in violation for violation in partial)


def test_degree_zero_requires_exact_match():
    # Left stutters once on p before switching to q; right switches immediately.
    left = KripkeStructure(
        states=["p0", "p1", "q0"],
        transitions=[("p0", "p1"), ("p1", "q0"), ("q0", "p0")],
        labeling={"p0": {"p"}, "p1": {"p"}, "q0": {"q"}},
        initial_state="p0",
    )
    right = KripkeStructure(
        states=["P", "Q"],
        transitions=[("P", "Q"), ("Q", "P")],
        labeling={"P": {"p"}, "Q": {"q"}},
        initial_state="P",
    )
    # Degree 0 everywhere is wrong: p0 cannot exactly match P (its move to p1
    # has no matching move of P into a p-labelled partner with p1).
    zero = CorrespondenceRelation(
        {("p0", "P"): 0, ("p1", "P"): 0, ("q0", "Q"): 0}
    )
    assert not is_correspondence(left, right, zero)
    # Giving the stuttering pair degree 1 fixes it.
    fixed = CorrespondenceRelation(
        {("p0", "P"): 1, ("p1", "P"): 0, ("q0", "Q"): 0}
    )
    assert is_correspondence(left, right, fixed)


def test_pair_clause_violations_for_single_pair():
    left, right = identical_pair()
    relation = CorrespondenceRelation({("a", "a2"): 0, ("b", "b2"): 0})
    assert pair_clause_violations(left, right, relation, "a", "a2") == []
    broken = CorrespondenceRelation({("a", "a2"): 0})
    assert pair_clause_violations(left, right, broken, "a", "a2")


def test_assert_correspondence_raises_with_message():
    left, right = identical_pair()
    relation = CorrespondenceRelation({("a", "a2"): 0})
    with pytest.raises(CorrespondenceError):
        assert_correspondence(left, right, relation)


def test_custom_label_key_is_respected():
    left, right = identical_pair()
    relation = CorrespondenceRelation(
        {("a", "a2"): 0, ("b", "b2"): 0, ("a", "b2"): 0, ("b", "a2"): 0}
    )
    # With a label projection that ignores labels entirely, the cross pairs
    # stop being label violations (and the clause conditions become easier).
    violations = correspondence_violations(
        left, right, relation, label_key=lambda structure, state: None
    )
    assert not any("labels differ" in violation for violation in violations)


def test_max_reported_truncates_output():
    left, right = identical_pair()
    relation = CorrespondenceRelation(
        {("a", "b2"): 0, ("b", "a2"): 0, ("a", "a2"): 0, ("b", "b2"): 0}
    )
    violations = correspondence_violations(left, right, relation, max_reported=1)
    assert any("suppressed" in violation for violation in violations)
