"""Unit tests for the Section 5 token ring system."""

import pytest

from repro.errors import StructureError
from repro.kripke.structure import IndexedProp
from repro.systems.token_ring import (
    RECOMMENDED_BASE_SIZE,
    RingState,
    build_token_ring,
    cln,
    corrected_index_relation,
    distinguishing_formula,
    initial_state,
    invariant_one_token,
    invariant_request_persistence,
    is_idle_transition,
    partition_invariant_holds,
    property_critical_implies_token,
    property_eventual_entry,
    rank,
    ring_invariants,
    ring_properties,
    ring_successors,
    section5_correspondence,
    section5_degree,
    section5_index_relation,
    section5_pair_corresponds,
    state_label,
)


# ---------------------------------------------------------------------------
# Global states and transitions
# ---------------------------------------------------------------------------


def test_initial_state_matches_the_paper():
    state = initial_state(4)
    assert state.token_neutral == frozenset({1})
    assert state.neutral == frozenset({2, 3, 4})
    assert state.delayed == frozenset()
    assert state.critical == frozenset()
    assert state.token_holder() == 1
    with pytest.raises(StructureError):
        initial_state(0)


def test_part_of_and_token_holder():
    state = RingState(
        delayed=frozenset({3}),
        neutral=frozenset({2}),
        token_neutral=frozenset(),
        critical=frozenset({1}),
    )
    assert state.part_of(1) == "C"
    assert state.part_of(2) == "N"
    assert state.part_of(3) == "D"
    assert state.part_of(99) == "O"
    assert state.token_holder() == 1


def test_cln_picks_the_closest_delayed_left_neighbour():
    state = RingState(
        delayed=frozenset({1, 4}),
        neutral=frozenset({2}),
        token_neutral=frozenset(),
        critical=frozenset({3}),
    )
    assert cln(state, 3, 4) == 1  # going left: 2 (not delayed), 1 (delayed)
    assert cln(state, 1, 4) == 4
    no_delay = initial_state(4)
    assert cln(no_delay, 1, 4) is None


def test_transition_rules_from_the_initial_state():
    start = initial_state(2)
    successors = ring_successors(start, 2)
    # Rule 1 (process 2 delays) and rule 3 (process 1 enters critical).
    assert len(successors) == 2
    parts = {(frozenset(s.delayed), frozenset(s.critical)) for s in successors}
    assert (frozenset({2}), frozenset()) in parts
    assert (frozenset(), frozenset({1})) in parts


def test_transfer_rule_moves_receiver_into_critical():
    state = RingState(
        delayed=frozenset({2}),
        neutral=frozenset(),
        token_neutral=frozenset(),
        critical=frozenset({1}),
    )
    (successor,) = ring_successors(state, 2)
    assert successor.critical == frozenset({2})
    assert successor.neutral == frozenset({1})
    assert successor.delayed == frozenset()


def test_critical_process_keeps_token_only_when_nobody_is_delayed():
    no_delay = RingState(
        delayed=frozenset(),
        neutral=frozenset({2}),
        token_neutral=frozenset(),
        critical=frozenset({1}),
    )
    successors = ring_successors(no_delay, 2)
    assert any(s.token_neutral == frozenset({1}) for s in successors)
    with_delay = RingState(
        delayed=frozenset({2}),
        neutral=frozenset(),
        token_neutral=frozenset(),
        critical=frozenset({1}),
    )
    assert all(s.token_neutral == frozenset() for s in ring_successors(with_delay, 2))


def test_state_label_follows_the_paper():
    state = RingState(
        delayed=frozenset({2}),
        neutral=frozenset({3}),
        token_neutral=frozenset({1}),
        critical=frozenset(),
    )
    label = state_label(state)
    assert IndexedProp("d", 2) in label
    assert IndexedProp("n", 3) in label
    assert IndexedProp("n", 1) in label and IndexedProp("t", 1) in label
    assert IndexedProp("c", 1) not in label


# ---------------------------------------------------------------------------
# Building M_r
# ---------------------------------------------------------------------------


def test_m2_matches_fig51(ring2):
    assert ring2.num_states == 8
    assert ring2.num_transitions == 14
    assert ring2.is_total()
    assert ring2.index_values == frozenset({1, 2})


def test_known_state_counts_grow_exponentially(ring2, ring3, ring4):
    assert ring2.num_states == 8
    assert ring3.num_states == 24
    assert ring4.num_states == 64
    assert build_token_ring(5).num_states == 160


def test_single_process_ring_has_two_states():
    ring1 = build_token_ring(1)
    assert ring1.num_states == 2
    assert ring1.is_total()


def test_max_states_guard():
    with pytest.raises(StructureError):
        build_token_ring(5, max_states=10)


def test_partition_invariant(ring2, ring3, ring4):
    for structure in (ring2, ring3, ring4):
        assert partition_invariant_holds(structure)


def test_partition_invariant_requires_ring_states(toggle_structure):
    from repro.kripke.indexed import IndexedKripkeStructure

    bogus = IndexedKripkeStructure(
        ["s"], [("s", "s")], {"s": {IndexedProp("d", 1)}}, "s", index_values=[1]
    )
    with pytest.raises(StructureError):
        partition_invariant_holds(bogus)


# ---------------------------------------------------------------------------
# Ranks and idle transitions
# ---------------------------------------------------------------------------


def test_rank_neutral_is_zero():
    state = initial_state(4)
    assert rank(state, 2, 4) == 0


def test_rank_token_holder_counts_neutrals():
    state = initial_state(4)  # 1 holds the token, 2..4 neutral
    assert rank(state, 1, 4) == 3


def test_rank_critical_depends_on_delayed():
    nobody_delayed = RingState(
        delayed=frozenset(), neutral=frozenset({2, 3}), token_neutral=frozenset(), critical=frozenset({1})
    )
    assert rank(nobody_delayed, 1, 3) == 0
    somebody_delayed = RingState(
        delayed=frozenset({2}), neutral=frozenset({3}), token_neutral=frozenset(), critical=frozenset({1})
    )
    assert rank(somebody_delayed, 1, 3) == 1


def test_rank_delayed_uses_the_appendix_formula():
    # 4-ring: token at 3 (critical), 1 delayed, 2 and 4 neutral.
    state = RingState(
        delayed=frozenset({1}),
        neutral=frozenset({2, 4}),
        token_neutral=frozenset(),
        critical=frozenset({3}),
    )
    # |N| + |T| + 2((j - i) mod r - 1) = 2 + 0 + 2(2 - 1) = 4
    assert rank(state, 1, 4) == 4


def test_rank_rejects_states_without_holder():
    state = RingState(
        delayed=frozenset({1, 2}),
        neutral=frozenset(),
        token_neutral=frozenset(),
        critical=frozenset(),
    )
    with pytest.raises(StructureError):
        rank(state, 1, 2)


def test_rank_bounds_consecutive_idle_transitions(ring3):
    """The rank is an upper bound on runs of i-idle transitions (non-neutral states)."""
    for state in ring3.states:
        for index in (1, 2, 3):
            if state.part_of(index) == "N":
                continue
            bound = rank(state, index, 3)
            # Depth-first search for the longest run of idle transitions.
            longest = _longest_idle_run(ring3, state, index)
            assert longest <= bound, (state, index, longest, bound)


def _longest_idle_run(structure, state, index, depth=0, limit=30):
    if depth >= limit:
        return depth
    best = 0
    for successor in structure.successors(state):
        if is_idle_transition(state, successor, index):
            best = max(best, 1 + _longest_idle_run(structure, successor, index, depth + 1, limit))
    return best


def test_is_idle_transition_flags_the_critical_case():
    source = RingState(
        delayed=frozenset(), neutral=frozenset({2, 3}), token_neutral=frozenset(), critical=frozenset({1})
    )
    delaying = RingState(
        delayed=frozenset({2}), neutral=frozenset({3}), token_neutral=frozenset(), critical=frozenset({1})
    )
    # Process 1 stays critical, but D goes from empty to non-empty: not 1-idle.
    assert not is_idle_transition(source, delaying, 1)
    # It *is* idle for process 3, which stays neutral.
    assert is_idle_transition(source, delaying, 3)


# ---------------------------------------------------------------------------
# The Section 5 correspondence artefacts
# ---------------------------------------------------------------------------


def test_section5_pair_condition():
    small = RingState(
        delayed=frozenset(), neutral=frozenset({2}), token_neutral=frozenset(), critical=frozenset({1})
    )
    large_empty = RingState(
        delayed=frozenset(), neutral=frozenset({2, 3}), token_neutral=frozenset(), critical=frozenset({1})
    )
    large_busy = RingState(
        delayed=frozenset({3}), neutral=frozenset({2}), token_neutral=frozenset(), critical=frozenset({1})
    )
    assert section5_pair_corresponds(small, 1, large_empty, 1)
    assert not section5_pair_corresponds(small, 1, large_busy, 1)
    assert not section5_pair_corresponds(small, 2, large_empty, 1)


def test_section5_degree_is_rank_sum():
    small = initial_state(2)
    large = initial_state(4)
    assert section5_degree(small, 1, large, 1, 2, 4) == rank(small, 1, 2) + rank(large, 1, 4)


def test_section5_correspondence_covers_all_states(ring2, ring3):
    relation = section5_correspondence(ring2, ring3, 1, 1)
    assert relation.is_total_for(ring2.states, ring3.states)
    assert relation.corresponds(ring2.initial_state, ring3.initial_state)


def test_index_relation_builders():
    assert len(section5_index_relation(4).pairs) == 4
    with pytest.raises(StructureError):
        section5_index_relation(1)
    with pytest.raises(StructureError):
        corrected_index_relation(1, 4)


def test_recommended_base_size_is_three():
    assert RECOMMENDED_BASE_SIZE == 3


# ---------------------------------------------------------------------------
# Formulas
# ---------------------------------------------------------------------------


def test_properties_and_invariants_are_restricted_ictl():
    from repro.logic.syntax import is_restricted_ictl

    for formula in list(ring_properties().values()) + list(ring_invariants().values()):
        assert is_restricted_ictl(formula)
    assert is_restricted_ictl(distinguishing_formula())


def test_properties_hold_on_small_rings(ring2, ring3):
    from repro.mc.indexed import ICTLStarModelChecker

    for structure in (ring2, ring3):
        checker = ICTLStarModelChecker(structure)
        assert checker.check(property_critical_implies_token())
        assert checker.check(property_eventual_entry())
        assert checker.check(invariant_one_token())
        assert checker.check(invariant_request_persistence())


def test_distinguishing_formula_separates_m2_from_larger_rings(ring2, ring3, ring4):
    from repro.mc.indexed import ICTLStarModelChecker

    assert ICTLStarModelChecker(ring2).check(distinguishing_formula())
    assert not ICTLStarModelChecker(ring3).check(distinguishing_formula())
    assert not ICTLStarModelChecker(ring4).check(distinguishing_formula())
