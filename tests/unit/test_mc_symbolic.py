"""Unit tests for the symbolic CTL model checker and its engine registration.

The differential heavy lifting lives in ``tests/property/test_property_symbolic.py``;
here the checker is pinned down on known structures — fixture structures with
hand-computed satisfaction sets, the token ring via both the explicit and the
direct symbolic path, engine dispatch (`make_ctl_checker`, `ICTLStarModelChecker`,
the lasso oracle's leaf evaluator), and the error surface.
"""

import pytest

from repro.errors import FragmentError, ModelCheckingError, ValidationError
from repro.kripke.structure import KripkeStructure
from repro.logic.ast import Atom, IndexExists, IndexedAtom
from repro.logic.builders import AF, AG, AU, EF, EG, EU, EX, implies, lnot
from repro.logic.parser import parse
from repro.mc.bitset import CTL_ENGINES, BitsetCTLModelChecker, make_ctl_checker
from repro.mc.indexed import ICTLStarModelChecker
from repro.mc.oracle import find_lasso_witness, simple_lasso_exists
from repro.mc.symbolic import SymbolicCTLModelChecker, check, satisfaction_set
from repro.systems import token_ring


def test_known_satisfaction_sets_on_branching(branching_structure):
    checker = SymbolicCTLModelChecker(branching_structure)
    p, q = Atom("p"), Atom("q")
    assert checker.satisfaction_set(EG(p)) == frozenset({"b"})
    assert checker.satisfaction_set(EF(q)) == frozenset({"a", "c", "d"})
    assert checker.satisfaction_set(AF(p)) == frozenset({"a", "b", "c", "d"})
    assert checker.satisfaction_set(EX(p)) == frozenset({"a", "b", "c"})
    assert checker.satisfaction_set(EU(lnot(p), q)) == frozenset({"a", "c", "d"})
    assert checker.satisfaction_set(AU(lnot(p), q)) == frozenset({"c", "d"})


def test_check_defaults_to_initial_state(toggle_structure):
    checker = SymbolicCTLModelChecker(toggle_structure)
    formula = AG(implies(Atom("p"), EX(Atom("q"))))
    assert checker.check(formula)
    assert checker.check(formula, "off")
    assert not checker.check(Atom("q"))
    assert checker.check(Atom("q"), "off")


def test_check_batch_mapping_and_iterable(toggle_structure):
    checker = SymbolicCTLModelChecker(toggle_structure)
    named = checker.check_batch({"p_now": Atom("p"), "always_back": AG(EF(Atom("p")))})
    assert named == {"p_now": True, "always_back": True}
    by_formula = checker.check_batch([Atom("p"), Atom("q")])
    assert by_formula == {Atom("p"): True, Atom("q"): False}


def test_satisfaction_bdd_and_memo(branching_structure):
    checker = SymbolicCTLModelChecker(branching_structure)
    formula = EF(Atom("q"))
    first = checker.satisfaction_node(formula)
    assert checker.satisfaction_node(formula) == first
    wrapped = checker.satisfaction_bdd(formula)
    assert wrapped.node == first
    assert wrapped.manager is checker.symbolic.manager


def test_one_shot_helpers(branching_structure):
    assert check(branching_structure, EF(Atom("q")))
    assert satisfaction_set(branching_structure, Atom("p")) == frozenset({"b", "d"})


def test_parsed_formulas(branching_structure):
    checker = SymbolicCTLModelChecker(branching_structure)
    naive_equalities = [
        "A G (p -> A F p)",
        "E ((!p) U q)",
        "A (q R (p | q | !p))",
        "A (p W q)",
    ]
    bitset = BitsetCTLModelChecker(branching_structure)
    for text in naive_equalities:
        formula = parse(text)
        assert checker.satisfaction_set(formula) == bitset.satisfaction_set(formula)


def test_non_ctl_formula_is_rejected(branching_structure):
    checker = SymbolicCTLModelChecker(branching_structure)
    with pytest.raises(FragmentError):
        checker.satisfaction_set(parse("E (F p & G q)"))


def test_non_total_structure_is_rejected():
    stuck = KripkeStructure(
        states=["a", "b"],
        transitions=[("a", "b")],
        labeling={},
        initial_state="a",
    )
    with pytest.raises(ValidationError):
        SymbolicCTLModelChecker(stuck)
    # validate_structure=False skips the check, like the other engines.
    SymbolicCTLModelChecker(stuck, validate_structure=False)


# ---------------------------------------------------------------------------
# Index quantifiers
# ---------------------------------------------------------------------------


def test_index_quantifiers_instantiated_on_indexed_encodings():
    # The family encoding has no explicit IndexedKripkeStructure to hand to
    # ICTLStarModelChecker, so the symbolic checker instantiates ∧_i itself.
    symbolic = token_ring.symbolic_token_ring(3)
    checker = SymbolicCTLModelChecker(symbolic)
    assert checker.check(token_ring.property_critical_implies_token())


def test_index_quantifiers_rejected_without_index_set(branching_structure):
    checker = SymbolicCTLModelChecker(branching_structure)
    with pytest.raises(FragmentError):
        checker.check(IndexExists("i", EF(IndexedAtom("p", "i"))))


def test_symbolic_family_checks_full_property_set():
    symbolic = token_ring.symbolic_token_ring(4)
    checker = SymbolicCTLModelChecker(symbolic)
    results = checker.check_batch(
        {**token_ring.ring_properties(), **token_ring.ring_invariants()}
    )
    assert all(results.values())
    # The distinguishing formula must be false on rings of size >= 3 — the
    # symbolic engine agrees with the reproduction's explicit finding.
    assert not checker.check(token_ring.distinguishing_formula())
    # Satisfy-counts stay symbolic: EF(some delayed process) covers all states.
    some_delayed = IndexExists("i", IndexedAtom("d", "i"))
    assert checker.satisfy_count(EF(some_delayed)) == symbolic.num_states


# ---------------------------------------------------------------------------
# Engine registration
# ---------------------------------------------------------------------------


def test_bdd_engine_is_registered():
    assert "bdd" in CTL_ENGINES


def test_make_ctl_checker_dispatches_bdd(branching_structure):
    checker = make_ctl_checker(branching_structure, engine="bdd")
    assert isinstance(checker, SymbolicCTLModelChecker)
    with pytest.raises(ModelCheckingError):
        make_ctl_checker(branching_structure, engine="zdd")


def test_ictlstar_checker_accepts_bdd_engine(ring3):
    checker = ICTLStarModelChecker(ring3, engine="bdd")
    assert checker.engine == "bdd"
    results = checker.check_batch(token_ring.ring_properties())
    assert all(results.values())
    reference = ICTLStarModelChecker(ring3, engine="bitset").check_batch(
        token_ring.ring_properties()
    )
    assert results == reference


def test_lasso_oracle_accepts_bdd_leaf_evaluation(toggle_structure):
    witness_formula = parse("F q")
    assert simple_lasso_exists(toggle_structure, "on", witness_formula, engine="bdd")
    lasso = find_lasso_witness(toggle_structure, "on", witness_formula, engine="bdd")
    assert lasso is not None


def test_symbolic_structure_property_exposes_source(branching_structure):
    checker = SymbolicCTLModelChecker(branching_structure)
    assert checker.structure is branching_structure
    family = SymbolicCTLModelChecker(token_ring.symbolic_token_ring(2))
    assert family.structure is None
