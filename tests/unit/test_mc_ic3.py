"""Unit tests for the IC3/PDR engine (`repro.mc.ic3`)."""

import pytest

from repro.errors import FragmentError, InconclusiveError
from repro.kripke.paths import is_path
from repro.logic.ast import And, Atom, Exists, Finally, Implies, Not, Or
from repro.logic.builders import AF, AG, EF, EG
from repro.mc.bitset import ENGINE_NAMES, BitsetCTLModelChecker, make_ctl_checker
from repro.mc.fairness import FairnessConstraint
from repro.mc.ic3 import DEFAULT_MAX_FRAMES, IC3ModelChecker, InvariantCertificate
from repro.mc.indexed import ICTLStarModelChecker
from repro.systems import counter, mutex, token_ring


@pytest.fixture(scope="module")
def mutex3_symbolic():
    return mutex.symbolic_mutex(3, domain="free")


def test_ic3_is_a_registered_engine():
    assert "ic3" in ENGINE_NAMES
    structure = mutex.build_mutex(2)
    checker = make_ctl_checker(structure, engine="ic3")
    assert isinstance(checker, IC3ModelChecker)
    assert checker.max_frames == DEFAULT_MAX_FRAMES
    assert not checker.supports_satisfaction_sets


def test_make_ctl_checker_bound_becomes_frame_ceiling():
    structure = mutex.build_mutex(2)
    checker = make_ctl_checker(structure, engine="ic3", bound=7)
    assert checker.max_frames == 7


def test_ic3_proves_mutex_safety(mutex3_symbolic):
    checker = IC3ModelChecker(mutex3_symbolic)
    assert checker.check(mutex.mutex_safety(3))
    assert checker.last_detail.startswith("ic3-invariant")
    assert checker.last_counterexample is None
    certificate = checker.certificate
    assert isinstance(certificate, InvariantCertificate)
    assert certificate.num_clauses == len(certificate.cubes) >= 1
    assert certificate.frame >= 1
    for cube in certificate.cubes:
        assert cube  # no empty clause in an invariant strengthening
        assert all(isinstance(literal, int) and literal != 0 for literal in cube)


def test_ic3_refutes_buggy_mutex_with_a_real_path():
    structure = mutex.build_mutex(3, buggy=True)
    checker = IC3ModelChecker(structure)
    assert not checker.check(mutex.mutex_safety(3))
    assert checker.last_detail.startswith("counterexample at depth")
    path = checker.last_counterexample
    assert path is not None
    assert path[0] == structure.initial_state
    assert is_path(structure, path)
    oracle = BitsetCTLModelChecker(structure)
    body = mutex.mutex_safety(3).path.operand
    assert not oracle.check(body, state=path[-1])


def test_prove_invariant_returns_certificate_or_none():
    good = IC3ModelChecker(mutex.symbolic_mutex(3, domain="free"))
    body = mutex.mutex_safety(3).path.operand
    assert isinstance(good.prove_invariant(body), InvariantCertificate)
    bad = IC3ModelChecker(mutex.symbolic_mutex(3, buggy=True, domain="free"))
    assert bad.prove_invariant(body) is None
    assert bad.last_counterexample is not None


def test_ic3_counter_family():
    checker = IC3ModelChecker(counter.symbolic_counter(8, domain="free"))
    assert checker.check(counter.counter_nonzero(8))
    assert checker.last_detail.startswith("ic3-invariant")
    # The buggy counter wraps all-ones around to zero: a genuine violation
    # at depth 2^n - 1, well past any small k-induction bound.
    buggy = IC3ModelChecker(counter.symbolic_counter(3, buggy=True, domain="free"))
    assert not buggy.check(counter.counter_nonzero(3))
    assert buggy.last_detail == "counterexample at depth 7"


def test_ic3_ring_one_token_and_pairwise_exclusion():
    structure = token_ring.symbolic_token_ring(4, domain="free")
    checker = IC3ModelChecker(structure)
    assert checker.check(token_ring.invariant_one_token())
    assert checker.check(token_ring.ring_mutual_exclusion(4))


def test_ring_mutual_exclusion_trivial_at_size_one():
    structure = token_ring.build_token_ring(1)
    checker = IC3ModelChecker(structure)
    assert checker.check(token_ring.ring_mutual_exclusion(1))


def test_frame_ceiling_raises_inconclusive():
    structure = token_ring.symbolic_token_ring(4, domain="free")
    checker = IC3ModelChecker(structure, max_frames=1)
    with pytest.raises(InconclusiveError):
        checker.check(token_ring.ring_mutual_exclusion(4))


def test_verdicts_are_memoised():
    checker = IC3ModelChecker(mutex.symbolic_mutex(3, domain="free"))
    formula = mutex.mutex_safety(3)
    assert checker.check(formula)
    queries = checker.stats()["relative_queries"]
    assert checker.check(formula)  # served from the memo
    assert checker.stats()["relative_queries"] == queries


def test_boolean_connectives_dispatch():
    checker = IC3ModelChecker(mutex.symbolic_mutex(3, domain="free"))
    safety = mutex.mutex_safety(3)
    assert checker.check(And(safety, safety))
    assert checker.check(Or(safety, Not(safety)))
    assert checker.check(Implies(Not(safety), safety))
    assert not checker.check(Not(safety))


def test_ef_is_decided_by_duality():
    # EF bad on the buggy mutex == not AG !bad.
    checker = IC3ModelChecker(mutex.symbolic_mutex(2, buggy=True, domain="free"))
    safety_body = mutex.mutex_safety(2).path.operand
    two_critical = Exists(Finally(Not(safety_body)))
    assert checker.check(two_critical)


def test_liveness_is_outside_the_fragment(mutex3_symbolic):
    checker = IC3ModelChecker(mutex3_symbolic)
    for formula in (AF(Atom("p")), EG(Atom("p")), AG(EF(Atom("p")))):
        with pytest.raises(FragmentError):
            checker.check(formula)


def test_fairness_is_rejected():
    structure = mutex.build_mutex(2)
    constraint = mutex.mutex_scheduler_fairness(2)
    assert isinstance(constraint, FairnessConstraint)
    with pytest.raises(FragmentError):
        IC3ModelChecker(structure, fairness=constraint)


def test_stats_report_frame_and_solver_counters(mutex3_symbolic):
    checker = IC3ModelChecker(mutex3_symbolic)
    checker.check(mutex.mutex_safety(3))
    stats = checker.stats()
    assert stats["frames"] >= 1
    assert stats["cubes_blocked"] >= 1
    assert stats["obligations"] >= 1
    assert stats["relative_queries"] > 0
    assert stats["verification_queries"] >= len(checker.certificate.cubes)
    assert stats["solve_calls"] > 0
    assert stats["conflicts"] >= 0


def test_indexed_checker_dispatches_verdict_only():
    structure = token_ring.build_token_ring(3)
    checker = ICTLStarModelChecker(structure, engine="ic3")
    assert checker.check(token_ring.invariant_one_token())
    with pytest.raises(FragmentError):
        checker.satisfaction_set(token_ring.invariant_one_token())


def test_explicit_structures_are_encoded_transparently():
    # The same checker accepts an explicit structure and proves the same
    # certificate facts as the hand-built symbolic encoding.
    explicit = mutex.build_mutex(2)
    checker = IC3ModelChecker(explicit)
    assert checker.check(mutex.mutex_safety(2))
    assert checker.certificate is not None
