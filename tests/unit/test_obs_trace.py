"""Unit tests for the span tracer: nesting, exception safety, fast path.

The observability layer's contract is that instrumented hot paths pay
(nearly) nothing while tracing is disabled, and that when enabled the
recorded spans reconstruct the exact call tree — parentage, depth,
durations on the monotonic clock, and an ``error:<Type>`` status when
the span body raised (without ever swallowing the exception).
"""

from __future__ import annotations

import pytest

from repro.obs import sinks as obs_sinks
from repro.obs.trace import (
    _NOOP,
    current_span,
    enable,
    disable,
    event,
    get_tracer,
    is_enabled,
    recording,
    span,
)


@pytest.fixture(autouse=True)
def _tracing_disabled():
    """Every test starts and ends with tracing off (module-global tracer)."""
    disable()
    yield
    disable()


class FakeClock:
    """A deterministic nanosecond clock advancing by a fixed step per call."""

    def __init__(self, step_ns: int = 1000):
        self.now = 0
        self.step = step_ns

    def __call__(self) -> int:
        self.now += self.step
        return self.now


def test_disabled_span_is_shared_noop_singleton():
    assert not is_enabled()
    assert get_tracer() is None
    sp = span("anything", k=1)
    assert sp is _NOOP
    assert span("something.else") is sp
    with sp as inner:
        assert inner is sp
        inner.set(whatever=1)  # accepted and ignored
    assert current_span() is None
    event("ignored", n=3)  # no tracer: a strict no-op


def test_span_nesting_records_parentage_and_depth():
    with recording(clock_ns=FakeClock()) as tracer:
        with span("outer", engine="bdd") as outer:
            assert current_span() is outer
            with span("inner") as inner:
                assert current_span() is inner
                with span("innermost") as leaf:
                    assert leaf.depth == 2
            assert current_span() is outer
        assert current_span() is None
    names = tracer.span_names()
    # Completion order: innermost finishes first.
    assert names == ["innermost", "inner", "outer"]
    by_name = {record.name: record for record in tracer.records}
    assert by_name["outer"].parent_id is None
    assert by_name["inner"].parent_id == by_name["outer"].span_id
    assert by_name["innermost"].parent_id == by_name["inner"].span_id
    assert by_name["outer"].depth == 0
    assert by_name["inner"].depth == 1
    assert by_name["outer"].attrs == {"engine": "bdd"}


def test_span_durations_use_injected_monotonic_clock():
    with recording(clock_ns=FakeClock(step_ns=500)) as tracer:
        with span("timed"):
            pass
    [record] = tracer.records
    assert record.duration_ns == 500
    assert record.duration_s == pytest.approx(5e-7)
    assert record.end_ns > record.start_ns > 0


def test_span_exception_marks_status_and_propagates():
    with recording(clock_ns=FakeClock()) as tracer:
        with pytest.raises(ValueError, match="boom"):
            with span("failing", k=3):
                raise ValueError("boom")
        # The contextvar was restored despite the raise.
        assert current_span() is None
        with span("after"):
            pass
    failing = tracer.find("failing")[0]
    assert failing.status == "error:ValueError"
    assert failing.end_ns is not None
    assert tracer.find("after")[0].status == "ok"


def test_set_attaches_attributes_mid_span():
    with recording(clock_ns=FakeClock()) as tracer:
        with span("work", stage=1) as sp:
            sp.set(rounds=7, stage=2)
    [record] = tracer.records
    assert record.attrs == {"stage": 2, "rounds": 7}
    payload = record.as_dict()
    assert payload["kind"] == "span"
    assert payload["name"] == "work"
    assert payload["attrs"]["rounds"] == 7
    assert payload["dur_ns"] == record.duration_ns


def test_events_record_position_in_the_tree():
    with recording(clock_ns=FakeClock()) as tracer:
        event("top.level", n=1)
        with span("parent") as parent:
            event("bdd.gc", reclaimed=42)
    assert len(tracer.events) == 2
    top, nested = tracer.events
    assert top["parent_id"] is None
    assert nested["parent_id"] == parent.span_id
    assert nested["attrs"] == {"reclaimed": 42}


def test_enable_disable_round_trip_keeps_sinks_open():
    sink = obs_sinks.MemorySink()
    tracer = enable([sink], clock_ns=FakeClock())
    assert is_enabled() and get_tracer() is tracer
    with span("only"):
        pass
    returned = disable()
    assert returned is tracer
    assert not is_enabled()
    # disable() hands sink shutdown to the caller (the CLI writes the
    # trace file after disabling), so the sink is not closed yet.
    assert not sink.closed
    assert [record.name for record in sink.spans] == ["only"]
    tracer.close()
    assert sink.closed


def test_recording_restores_previous_tracer():
    outer_tracer = enable(clock_ns=FakeClock())
    with recording(clock_ns=FakeClock()) as inner_tracer:
        assert get_tracer() is inner_tracer
        with span("inner.only"):
            pass
    assert get_tracer() is outer_tracer
    assert inner_tracer.span_names() == ["inner.only"]
    assert outer_tracer.records == []


def test_spans_fan_out_to_sinks_as_they_finish():
    sink = obs_sinks.MemorySink()
    with recording(sinks=[sink], clock_ns=FakeClock()):
        with span("a"):
            with span("b"):
                pass
        event("mark")
    assert [record.name for record in sink.spans] == ["b", "a"]
    assert [record["name"] for record in sink.events] == ["mark"]
    assert sink.closed  # recording() closes the sinks it was given
