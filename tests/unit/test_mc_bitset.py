"""Unit tests for the bitset CTL engine and the engine selection plumbing."""

import pytest

from repro.errors import FragmentError, ModelCheckingError, ValidationError
from repro.kripke.compiled import compile_structure
from repro.kripke.structure import KripkeStructure
from repro.logic import parse
from repro.logic.ast import Atom, IndexExists
from repro.logic.transform import instantiate_quantifiers
from repro.mc.bitset import BitsetCTLModelChecker, make_ctl_checker
from repro.mc.ctl import CTLModelChecker
from repro.mc.indexed import ICTLStarModelChecker, check_batch
from repro.mc.oracle import crosscheck_ctl_engines
from repro.systems import barrier, round_robin, token_ring

FORMULAS = [
    "p",
    "!p",
    "p & q",
    "p | q",
    "p -> q",
    "E X p",
    "A X p",
    "E F q",
    "A F q",
    "E G p",
    "A G (p | q | !p)",
    "E (p U q)",
    "A (p U q)",
    "A G (p -> A F q)",
    "E F (q & E X p)",
]


def _assert_engines_agree(structure, formula):
    naive = CTLModelChecker(structure).satisfaction_set(formula)
    fast = BitsetCTLModelChecker(structure).satisfaction_set(formula)
    assert fast == naive


@pytest.mark.parametrize("text", FORMULAS)
def test_bitset_matches_naive_on_branching(branching_structure, text):
    _assert_engines_agree(branching_structure, parse(text))


@pytest.mark.parametrize("text", FORMULAS)
def test_bitset_matches_naive_on_toggle(toggle_structure, text):
    _assert_engines_agree(toggle_structure, parse(text))


def test_release_and_weak_until_match_naive(branching_structure):
    for text in ["E (p R q)", "A (p R q)", "E (p W q)", "A (p W q)"]:
        _assert_engines_agree(branching_structure, parse(text))


def test_iff_matches_naive(branching_structure):
    _assert_engines_agree(branching_structure, parse("p <-> q"))


def test_checker_accepts_precompiled_structure(branching_structure):
    compiled = compile_structure(branching_structure)
    checker = BitsetCTLModelChecker(compiled)
    assert checker.compiled is compiled
    assert checker.structure is branching_structure
    assert checker.check(parse("E F q"))


def test_check_batch_shares_one_compilation(branching_structure):
    checker = BitsetCTLModelChecker(branching_structure)
    named = checker.check_batch({"ef_q": parse("E F q"), "ag_true": parse("A G true")})
    assert named == {"ef_q": True, "ag_true": True}
    formulas = [parse("E F q"), parse("E G p")]
    keyed = checker.check_batch(formulas)
    assert set(keyed) == set(formulas)


def test_label_batch_computes_each_shared_subformula_once(branching_structure):
    checker = BitsetCTLModelChecker(branching_structure)
    computed = []
    original = checker._compute

    def counting_compute(formula):
        computed.append(formula)
        return original(formula)

    checker._compute = counting_compute
    # Three formulas sharing the sub-formula (p | q) and the atoms.
    shared = parse("p | q")
    family = [
        parse("E F (p | q)"),
        parse("A G (p | q)"),
        parse("(p | q) & E X p"),
    ]
    results = checker.check_batch(family)
    fresh = BitsetCTLModelChecker(branching_structure)
    assert results == {formula: fresh.check(formula) for formula in family}
    assert computed.count(shared) == 1
    assert computed.count(parse("p")) == 1
    assert computed.count(parse("q")) == 1
    # Every distinct sub-formula landed in the shared bitmask table.
    assert shared in checker._cache
    for formula in family:
        assert formula in checker._cache


def test_label_batch_matches_individual_checks(ring3):
    from repro.logic.transform import instantiate_quantifiers
    from repro.systems import token_ring

    family = [
        instantiate_quantifiers(formula, ring3.index_values)
        for formula in token_ring.ring_properties().values()
    ]
    batch = BitsetCTLModelChecker(ring3).check_batch(family)
    fresh = BitsetCTLModelChecker(ring3)
    for formula in family:
        assert batch[formula] == fresh.check(formula)


def test_bitset_rejects_index_quantifiers(branching_structure):
    checker = BitsetCTLModelChecker(branching_structure)
    with pytest.raises(FragmentError):
        checker.satisfaction_set(IndexExists("i", Atom("p")))


def test_bitset_validates_totality():
    broken = KripkeStructure(
        states=["alive", "dead"],
        transitions=[("alive", "dead")],
        labeling={},
        initial_state="alive",
    )
    with pytest.raises(ValidationError):
        BitsetCTLModelChecker(broken)
    # Validation can be skipped, matching the naive checker's contract.
    BitsetCTLModelChecker(broken, validate_structure=False)


def test_make_ctl_checker_engine_selection(branching_structure):
    assert isinstance(make_ctl_checker(branching_structure, "bitset"), BitsetCTLModelChecker)
    assert isinstance(make_ctl_checker(branching_structure, "naive"), CTLModelChecker)
    compiled = compile_structure(branching_structure)
    naive = make_ctl_checker(compiled, "naive")
    assert naive.structure is branching_structure
    with pytest.raises(ModelCheckingError):
        make_ctl_checker(branching_structure, "frozenset")


def test_ictlstar_engine_parameter(ring3):
    fast = ICTLStarModelChecker(ring3, engine="bitset")
    slow = ICTLStarModelChecker(ring3, engine="naive")
    assert fast.engine == "bitset" and slow.engine == "naive"
    for formula in token_ring.ring_properties().values():
        assert fast.satisfaction_set(formula) == slow.satisfaction_set(formula)
    with pytest.raises(ModelCheckingError):
        ICTLStarModelChecker(ring3, engine="frozenset")


def test_ictlstar_check_batch(ring3):
    properties = token_ring.ring_properties()
    batch = ICTLStarModelChecker(ring3).check_batch(properties)
    assert batch == {name: True for name in properties}
    helper = check_batch(ring3, properties)
    assert helper == batch


def test_crosscheck_ctl_engines_returns_common_set(branching_structure):
    formula = parse("A G (p -> A F q)")
    result = crosscheck_ctl_engines(branching_structure, formula)
    assert result == CTLModelChecker(branching_structure).satisfaction_set(formula)


def _token_ring_formulas():
    merged = dict(token_ring.ring_properties())
    merged.update(token_ring.ring_invariants())
    return merged


FAMILIES = {
    "token_ring": (token_ring.build_token_ring, _token_ring_formulas, (2, 3, 4)),
    "round_robin": (round_robin.build_round_robin, round_robin.round_robin_properties, (2, 3)),
    "barrier": (barrier.build_barrier, barrier.barrier_properties, (2, 3)),
}


@pytest.mark.parametrize("family", sorted(FAMILIES))
def test_engines_agree_on_all_system_families(family):
    build, properties, sizes = FAMILIES[family]
    for size in sizes:
        structure = build(size)
        naive = CTLModelChecker(structure)
        fast = BitsetCTLModelChecker(structure)
        for name, formula in properties().items():
            instantiated = instantiate_quantifiers(formula, structure.index_values)
            assert fast.satisfaction_set(instantiated) == naive.satisfaction_set(
                instantiated
            ), (family, size, name)
