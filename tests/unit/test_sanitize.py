"""Corrupt-and-detect tests for the BDD and SAT runtime sanitizers.

Each invariant family gets a test that deliberately breaks the structure
and asserts the audit reports it — a sanitizer that never fires is
indistinguishable from one that checks nothing.  The happy paths (clean
structures audit clean, hooks are inert when disabled, ``assert_no_leaks``
passes a leak-free block) are covered alongside, and the r=10 symbolic
sweep runs under the leak check as a regression guard for the fixpoint
memoisation path.
"""

from __future__ import annotations

import os

import pytest

import repro.bdd.sanitize as bdd_sanitize
import repro.sat.sanitize as sat_sanitize
from repro.bdd import BDDFunction, BDDManager
from repro.bdd.sanitize import assert_no_leaks, check_manager
from repro.errors import SanitizerError
from repro.sat.sanitize import check_solver
from repro.sat.solver import Solver

# The default-is-off tests are meaningless when the whole suite runs
# under REPRO_SANITIZE=1 (the sanitized CI lane does exactly that).
_default_off = pytest.mark.skipif(
    os.environ.get("REPRO_SANITIZE", "") not in ("", "0"),
    reason="suite runs with REPRO_SANITIZE=1; sanitizers are deliberately on",
)


# ---------------------------------------------------------------------------
# BDD sanitizer
# ---------------------------------------------------------------------------


@pytest.fixture()
def populated_manager():
    manager = BDDManager()
    a, b, c = (BDDFunction.variable(manager, level) for level in (0, 1, 2))
    keep = [(a & b) | c, a ^ b, ~(b & c)]
    return manager, keep


class TestBDDAudit:
    def test_clean_manager_passes(self, populated_manager):
        manager, _keep = populated_manager
        check_manager(manager)

    def test_detects_corrupt_terminal(self, populated_manager):
        manager, _keep = populated_manager
        manager._varr[0] = 0
        with pytest.raises(SanitizerError, match="terminal slot 0"):
            check_manager(manager)

    def test_detects_broken_variable_order(self, populated_manager):
        manager, _keep = populated_manager
        manager._var2level[0], manager._var2level[1] = (
            manager._var2level[1],
            manager._var2level[0],
        )
        with pytest.raises(SanitizerError, match="not inverse"):
            check_manager(manager)

    def test_detects_stored_field_mismatch(self, populated_manager):
        manager, keep = populated_manager
        node = keep[0].node >> 1
        manager._lo[node] ^= 1
        with pytest.raises(SanitizerError, match="differ from its key"):
            check_manager(manager)

    def test_detects_refcount_drift(self, populated_manager):
        manager, keep = populated_manager
        node = keep[0].node >> 1
        manager._ref[node] += 1
        with pytest.raises(SanitizerError, match="refcount"):
            check_manager(manager)

    def test_detects_live_counter_drift(self, populated_manager):
        manager, _keep = populated_manager
        manager._live += 1
        with pytest.raises(SanitizerError, match="live counter"):
            check_manager(manager)

    def test_detects_bogus_external_entry(self, populated_manager):
        manager, keep = populated_manager
        node = keep[0].node >> 1
        manager._external[node] = 0
        with pytest.raises(SanitizerError, match="non-positive count"):
            check_manager(manager)

    def test_detects_dead_edge_in_op_cache(self, populated_manager):
        manager, _keep = populated_manager
        dead = 2 * (len(manager._varr) + 5)
        manager._ite_cache.data[(dead, 2, 3)] = 2
        with pytest.raises(SanitizerError, match="ite cache key"):
            check_manager(manager)

    def test_collect_hook_fires_when_enabled(self, populated_manager, sanitizers):
        # collect() recomputes refcounts (self-healing), so corrupt something
        # it preserves: a zero-count external entry survives the sweep.
        manager, keep = populated_manager
        node = keep[0].node >> 1
        manager._external[node] = 0
        with pytest.raises(SanitizerError):
            manager.collect()

    @_default_off
    def test_hook_is_inert_when_disabled(self, populated_manager):
        manager, keep = populated_manager
        assert bdd_sanitize.MODE == 0
        node = keep[0].node >> 1
        manager._ref[node] += 1  # corrupt...
        manager.collect()  # ...but nobody is looking
        manager._ref[node] -= 1  # collect() recomputes nothing here; restore


class TestLeakCheck:
    def test_clean_block_passes(self, populated_manager):
        manager, _keep = populated_manager
        with assert_no_leaks(manager):
            a = BDDFunction.variable(manager, 0)
            b = BDDFunction.variable(manager, 1)
            del a, b  # everything created inside is released inside

    def test_planted_leak_is_reported(self, populated_manager):
        manager, _keep = populated_manager
        bucket = []  # outlives the block: the classic stale-memo leak
        with pytest.raises(SanitizerError, match="never released"):
            with assert_no_leaks(manager):
                a = BDDFunction.variable(manager, 0)
                b = BDDFunction.variable(manager, 1)
                bucket.append(a & b)

    def test_symbolic_sweep_does_not_leak(self):
        """Regression: the fixpoint memos must release every intermediate.

        The r=10 token-ring CTL sweep exercises the EU/EG/fair-EG fixpoint
        loops and the per-formula cache; any handle they fail to drop shows
        up as a grown external count here.
        """
        from repro.mc.symbolic import SymbolicCTLModelChecker
        from repro.systems import token_ring

        system = token_ring.symbolic_token_ring(10)
        with assert_no_leaks(system.manager):
            checker = SymbolicCTLModelChecker(system)
            verdicts = checker.check_batch(token_ring.ring_properties())
            assert all(verdicts.values())
            del checker, verdicts


# ---------------------------------------------------------------------------
# SAT sanitizer
# ---------------------------------------------------------------------------


def _solved_solver() -> Solver:
    solver = Solver()
    a, b, c, d = (solver.new_var() for _ in range(4))
    solver.add_clause([a, b])
    solver.add_clause([-a, c])
    solver.add_clause([-b, d])
    solver.add_clause([-c, -d, a])
    assert solver.solve()
    return solver


class TestSATAudit:
    def test_clean_solver_passes(self):
        check_solver(_solved_solver())

    def test_detects_phantom_assignment(self):
        solver = _solved_solver()
        solver._assign[1] = 1  # assigned, but never pushed on the trail
        with pytest.raises(SanitizerError, match="missing from the trail"):
            check_solver(solver)

    def test_detects_corrupt_blocker(self):
        solver = _solved_solver()
        corrupted = False
        for watchers in solver._watches:
            if watchers:
                watchers[0] = solver.num_vars + 7  # not a literal of any clause
                corrupted = True
                break
        assert corrupted
        with pytest.raises(SanitizerError, match="blocker"):
            check_solver(solver)

    def test_detects_duplicate_literal_in_clause(self):
        solver = _solved_solver()
        clause = solver._clauses[0]
        clause.lits[1] = clause.lits[0]
        with pytest.raises(SanitizerError, match="twice"):
            check_solver(solver)

    def test_detects_stale_vsids_position(self):
        solver = Solver()
        for _ in range(6):
            solver.new_var()
        solver.add_clause([1, 2])
        heap = solver._order._heap
        if len(heap) >= 2:
            heap[0], heap[1] = heap[1], heap[0]  # heap moved, position map stale
        with pytest.raises(SanitizerError, match="VSIDS"):
            check_solver(solver)

    def test_detects_implausible_lbd(self):
        import random

        rng = random.Random(0)  # this seed is known to force conflicts
        solver = Solver()
        variables = [solver.new_var() for _ in range(20)]
        for _ in range(85):
            solver.add_clause(
                [rng.choice(variables) * rng.choice((1, -1)) for _ in range(3)]
            )
        assert solver.solve()
        assert solver._learnts, "instance unexpectedly solved without learning"
        solver._learnts[0].lbd = len(solver._learnts[0].lits) + 5
        with pytest.raises(SanitizerError, match="LBD"):
            check_solver(solver)

    def test_solve_hook_fires_when_enabled(self, sanitizers):
        solver = _solved_solver()  # solve() under the fixture audits clean
        # Corrupt bookkeeping solve() itself never trips over, so the error
        # can only come from the end-of-solve audit hook.
        solver._activity.append(0.0)
        with pytest.raises(SanitizerError):
            solver.solve()

    @_default_off
    def test_hook_is_inert_when_disabled(self):
        assert sat_sanitize.MODE == 0
        solver = _solved_solver()
        solver.solve()  # corrupt nothing, just confirm the path is silent


# ---------------------------------------------------------------------------
# Mode plumbing shared by both sanitizers
# ---------------------------------------------------------------------------


class TestModes:
    def test_fixture_enables_both(self, sanitizers):
        assert bdd_sanitize.enabled()
        assert sat_sanitize.enabled()

    @_default_off
    def test_default_is_off(self):
        assert not bdd_sanitize.enabled()
        assert not sat_sanitize.enabled()

    def test_count_only_mode_counts_without_auditing(self):
        manager = BDDManager()
        a = BDDFunction.variable(manager, 0)
        manager._ref[a.node >> 1] += 1  # corrupt: a full audit would raise
        previous = bdd_sanitize.MODE
        bdd_sanitize.MODE = 2
        before = bdd_sanitize.CALLS
        try:
            bdd_sanitize.maybe_check_manager(manager)
        finally:
            bdd_sanitize.MODE = previous
        assert bdd_sanitize.CALLS == before + 1
