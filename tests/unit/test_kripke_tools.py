"""Unit tests for builders, validation, reachability, reduction, products, paths, export, stats."""

import random

import pytest

from repro.errors import CompositionError, StructureError, ValidationError
from repro.kripke.builders import IndexedKripkeBuilder, KripkeBuilder
from repro.kripke.export import to_dot, to_json
from repro.kripke.indexed import IndexedKripkeStructure
from repro.kripke.paths import Lasso, enumerate_finite_paths, enumerate_lassos, is_path, random_walk
from repro.kripke.product import interleaved_product, synchronous_product
from repro.kripke.reachable import reachable_states, restrict_to_reachable
from repro.kripke.reduction import CANONICAL_INDEX, reduce_to_index
from repro.kripke.stats import structure_stats
from repro.kripke.structure import IndexedProp, KripkeStructure
from repro.kripke.validation import assert_total, validate, validation_issues


def test_builder_accumulates_states_and_transitions():
    builder = KripkeBuilder(name="built")
    builder.add_state("a", {"p"})
    builder.add_state("b")
    builder.add_transition("a", "b")
    builder.add_transition("b", "a")
    builder.set_initial("a")
    structure = builder.build()
    assert structure.num_states == 2
    assert structure.label("a") == frozenset({"p"})
    assert structure.name == "built"
    assert builder.has_state("a") and not builder.has_state("zzz")


def test_builder_merges_labels_on_readd():
    builder = KripkeBuilder()
    builder.add_state("a", {"p"})
    builder.add_state("a", {"q"})
    builder.add_transition("a", "a")
    assert builder.build(initial_state="a").label("a") == frozenset({"p", "q"})


def test_builder_rejects_transitions_between_unknown_states():
    builder = KripkeBuilder()
    builder.add_state("a")
    with pytest.raises(StructureError):
        builder.add_transition("a", "b")
    with pytest.raises(StructureError):
        builder.add_transition("b", "a")


def test_builder_requires_initial_state():
    builder = KripkeBuilder()
    builder.add_state("a")
    builder.add_transition("a", "a")
    with pytest.raises(StructureError):
        builder.build()
    with pytest.raises(StructureError):
        builder.set_initial("zzz")


def test_indexed_builder_builds_indexed_structure():
    builder = IndexedKripkeBuilder(index_values=[1, 2])
    builder.add_state("s", {IndexedProp("t", 1)})
    builder.add_transition("s", "s")
    structure = builder.build(initial_state="s")
    assert isinstance(structure, IndexedKripkeStructure)
    assert structure.index_values == frozenset({1, 2})


def test_validation_reports_deadlocks():
    partial = KripkeStructure(["a", "b"], [("a", "b")], {}, "a")
    issues = validation_issues(partial)
    assert any("no successors" in issue for issue in issues)
    with pytest.raises(ValidationError):
        validate(partial)
    with pytest.raises(ValidationError):
        assert_total(partial)


def test_validation_passes_for_total_structures(toggle_structure):
    assert validation_issues(toggle_structure) == []
    validate(toggle_structure)
    assert_total(toggle_structure)


def test_reachable_states_and_restriction():
    structure = KripkeStructure(
        states=["a", "b", "junk"],
        transitions=[("a", "b"), ("b", "a"), ("junk", "a")],
        labeling={"junk": {"x"}},
        initial_state="a",
    )
    assert reachable_states(structure) == frozenset({"a", "b"})
    restricted = restrict_to_reachable(structure)
    assert restricted.states == frozenset({"a", "b"})
    assert restricted.num_transitions == 2
    assert restricted.initial_state == "a"


def test_restrict_to_reachable_preserves_indexed_class(ring2):
    restricted = restrict_to_reachable(ring2)
    assert isinstance(restricted, IndexedKripkeStructure)
    assert restricted.states == ring2.states


def test_reduce_to_index_keeps_only_one_process(ring2):
    reduced = reduce_to_index(ring2, 1)
    for state in reduced.states:
        for element in reduced.label(state):
            assert isinstance(element, IndexedProp)
            assert element.index == CANONICAL_INDEX
    # The transitions and states are untouched.
    assert reduced.states == ring2.states
    assert reduced.num_transitions == ring2.num_transitions


def test_reduce_to_index_can_keep_original_index(ring2):
    reduced = reduce_to_index(ring2, 2, canonical_index=None)
    indices = {
        element.index
        for state in reduced.states
        for element in reduced.label(state)
        if isinstance(element, IndexedProp)
    }
    assert indices == {2}


def test_reduce_to_index_rejects_unknown_index(ring2):
    with pytest.raises(StructureError):
        reduce_to_index(ring2, 99)


def test_interleaved_product_state_count(toggle_structure):
    product = interleaved_product([toggle_structure, toggle_structure])
    assert product.num_states == 4
    assert product.is_total()
    # Each state has one move per component.
    assert all(len(product.successors(state)) == 2 for state in product.states)


def test_interleaved_product_labels_are_indexed(toggle_structure):
    product = interleaved_product([toggle_structure, toggle_structure], index_values=[3, 7])
    assert product.index_values == frozenset({3, 7})
    initial_label = product.label(product.initial_state)
    assert IndexedProp("p", 3) in initial_label and IndexedProp("p", 7) in initial_label


def test_interleaved_product_rejects_indexed_component_labels(ring2, toggle_structure):
    with pytest.raises(CompositionError):
        interleaved_product([ring2, toggle_structure])


def test_product_argument_validation(toggle_structure):
    with pytest.raises(CompositionError):
        interleaved_product([])
    with pytest.raises(CompositionError):
        interleaved_product([toggle_structure], index_values=[1, 2])
    with pytest.raises(CompositionError):
        interleaved_product([toggle_structure, toggle_structure], index_values=[1, 1])


def test_synchronous_product_moves_all_components(toggle_structure):
    product = synchronous_product([toggle_structure, toggle_structure])
    assert product.num_states == 2  # components stay in lock step
    assert all(len(product.successors(state)) == 1 for state in product.states)


def test_is_path_and_enumerate_finite_paths(branching_structure):
    assert is_path(branching_structure, ["a", "b", "b"])
    assert not is_path(branching_structure, ["a", "d"])
    assert not is_path(branching_structure, [])
    paths = list(enumerate_finite_paths(branching_structure, "a", 3))
    assert ("a", "b", "b") in paths
    assert ("a", "c", "d") in paths
    assert all(len(path) == 3 for path in paths)


def test_enumerate_lassos_yields_valid_lassos(branching_structure):
    lassos = list(enumerate_lassos(branching_structure, "a"))
    assert lassos
    for lasso in lassos:
        carrier = list(lasso.stem) + list(lasso.cycle)
        assert is_path(branching_structure, carrier)
        # The cycle closes.
        assert lasso.cycle[0] in branching_structure.successors(lasso.cycle[-1])


def test_lasso_successor_position():
    lasso = Lasso(stem=("a",), cycle=("b", "c"))
    assert lasso.first_state == "a"
    assert lasso.positions() == ("a", "b", "c")
    assert lasso.successor_position(0) == 1
    assert lasso.successor_position(2) == 1
    with pytest.raises(IndexError):
        lasso.successor_position(3)


def test_random_walk_follows_transitions(branching_structure):
    rng = random.Random(7)
    walk = random_walk(branching_structure, "a", 10, rng=rng)
    assert len(walk) == 10
    assert is_path(branching_structure, walk)


def test_random_walk_with_explicit_successors():
    walk = random_walk(None, 0, 5, successors=lambda n: [n + 1])
    assert walk == [0, 1, 2, 3, 4]
    with pytest.raises(StructureError):
        random_walk(object(), 0, 5)


def test_export_dot_and_json(toggle_structure):
    dot = to_dot(toggle_structure)
    assert dot.startswith("digraph")
    assert "->" in dot
    text = to_json(toggle_structure)
    assert '"initial"' in text


def test_structure_stats(ring2):
    stats = structure_stats(ring2)
    assert stats.num_states == 8
    assert stats.num_transitions == 14
    assert stats.is_total
    assert stats.num_index_values == 2
    assert stats.average_out_degree == pytest.approx(14 / 8)
    assert stats.as_dict()["num_states"] == 8
