"""Unit tests for the LTL tableau core and the CTL* checker."""

import pytest

from repro.errors import FragmentError, ModelCheckingError
from repro.kripke.structure import KripkeStructure
from repro.logic.builders import (
    AF,
    AG,
    EF,
    EG,
    E,
    F,
    G,
    U,
    X,
    A,
    atom,
    iatom,
    implies,
    index_forall,
    land,
    lor,
)
from repro.logic.parser import parse
from repro.mc.ctl import CTLModelChecker
from repro.mc.ctlstar import CTLStarModelChecker, check, satisfaction_set
from repro.mc.ltl import existential_states, exists_path_satisfying


@pytest.fixture(scope="module")
def two_branch():
    """Initial state branches into a p-cycle and a q-cycle."""
    return KripkeStructure(
        states=["root", "p1", "p2", "q1", "q2"],
        transitions=[
            ("root", "p1"),
            ("root", "q1"),
            ("p1", "p2"),
            ("p2", "p1"),
            ("q1", "q2"),
            ("q2", "q1"),
        ],
        labeling={"root": {"r"}, "p1": {"p"}, "p2": {"p"}, "q1": {"q"}, "q2": {"q"}},
        initial_state="root",
    )


# ---------------------------------------------------------------------------
# LTL core
# ---------------------------------------------------------------------------


def test_exists_globally(two_branch):
    result = existential_states(two_branch, G(lor(atom("p"), atom("r"))))
    assert result == frozenset({"root", "p1", "p2"})


def test_exists_eventually(two_branch):
    assert existential_states(two_branch, F(atom("q"))) == frozenset({"root", "q1", "q2"})


def test_exists_until(two_branch):
    result = existential_states(two_branch, U(atom("r"), atom("p")))
    assert result == frozenset({"root", "p1", "p2"})


def test_exists_conjunction_of_eventualities(two_branch):
    # No single path sees both p and q.
    assert existential_states(two_branch, land(F(atom("p")), F(atom("q")))) == frozenset()


def test_exists_infinitely_often(two_branch):
    assert existential_states(two_branch, G(F(atom("p")))) == frozenset({"root", "p1", "p2"})
    assert existential_states(two_branch, F(G(atom("q")))) == frozenset({"root", "q1", "q2"})


def test_exists_next(two_branch):
    assert existential_states(two_branch, X(atom("p"))) == frozenset({"root", "p1", "p2"})
    assert existential_states(two_branch, X(X(atom("q")))) == frozenset({"root", "q1", "q2"})


def test_exists_path_satisfying_single_state(two_branch):
    assert exists_path_satisfying(two_branch, "root", F(atom("p")))
    assert not exists_path_satisfying(two_branch, "q1", F(atom("p")))


def test_ltl_core_rejects_state_quantifiers(two_branch):
    with pytest.raises(ModelCheckingError):
        existential_states(two_branch, E(F(atom("p"))))


def test_custom_atom_eval(two_branch):
    # Treat a proxy atom as "state name starts with q".
    result = existential_states(
        two_branch,
        G(atom("__proxy")),
        atom_eval=lambda state, leaf: state.startswith("q") if leaf == atom("__proxy") else False,
    )
    assert result == frozenset({"q1", "q2"})


# ---------------------------------------------------------------------------
# CTL* checker
# ---------------------------------------------------------------------------


def test_ctlstar_agrees_with_ctl_on_ctl_formulas(two_branch, ring2):
    formulas = [
        AG(lor(atom("p"), lor(atom("q"), atom("r")))),
        EF(atom("q")),
        AF(lor(atom("p"), atom("q"))),
        EG(atom("p")),
    ]
    ctl = CTLModelChecker(two_branch)
    star = CTLStarModelChecker(two_branch, use_ctl_fast_path=False)
    for formula in formulas:
        assert ctl.satisfaction_set(formula) == star.satisfaction_set(formula)

    ring_formulas = [
        AG(implies(iatom("d", 1), AF(iatom("c", 1)))),
        AG(implies(iatom("c", 2), iatom("t", 2))),
    ]
    ctl_ring = CTLModelChecker(ring2)
    star_ring = CTLStarModelChecker(ring2, use_ctl_fast_path=False)
    for formula in ring_formulas:
        assert ctl_ring.satisfaction_set(formula) == star_ring.satisfaction_set(formula)


def test_ctlstar_nested_path_formula(two_branch):
    # E(F p ∧ F r) — possible only by staying at root? No: r only at root and
    # the path starts there, so E(F p ∧ F r) holds at root.
    checker = CTLStarModelChecker(two_branch)
    assert checker.check(E(land(F(atom("p")), F(atom("r")))))
    # E(F p ∧ F q) requires seeing both branches — impossible.
    assert not checker.check(E(land(F(atom("p")), F(atom("q")))))


def test_ctlstar_fairness_style_formula(two_branch):
    checker = CTLStarModelChecker(two_branch)
    # A(GF p  ∨  GF q): on every path, one of the cycles is visited forever.
    formula = A(lor(G(F(atom("p"))), G(F(atom("q")))))
    assert checker.check(formula)
    # A(GF p) fails because of the q branch.
    assert not checker.check(A(G(F(atom("p")))))


def test_ctlstar_e_of_state_formula_is_state_formula(two_branch):
    checker = CTLStarModelChecker(two_branch)
    assert checker.satisfaction_set(E(atom("p"))) == checker.satisfaction_set(atom("p"))
    assert checker.satisfaction_set(A(atom("p"))) == checker.satisfaction_set(atom("p"))


def test_ctlstar_rejects_path_formula_at_top_level(two_branch):
    checker = CTLStarModelChecker(two_branch)
    with pytest.raises(FragmentError):
        checker.satisfaction_set(F(atom("p")))


def test_ctlstar_rejects_index_quantifiers(two_branch):
    checker = CTLStarModelChecker(two_branch)
    with pytest.raises(FragmentError):
        checker.satisfaction_set(index_forall("i", AG(iatom("c", "i"))))


def test_ctlstar_module_helpers(two_branch):
    assert check(two_branch, EF(atom("p")))
    assert satisfaction_set(two_branch, atom("r")) == frozenset({"root"})


def test_ctlstar_on_parsed_formulas(fig31_pair):
    left, right = fig31_pair
    formula = parse("E(G F q)")
    assert check(left, formula)
    assert check(right, formula)
    formula2 = parse("A(G F p & G F q)")
    assert check(left, formula2)
    assert check(right, formula2)


def test_ctlstar_nexttime_distinguishes_stuttering(fig31_pair):
    # The whole point of dropping X: with it, the two Fig 3.1 structures differ.
    left, right = fig31_pair
    formula = parse("AG(p -> X (p | q))")
    left_result = check(left, formula)
    right_result = check(right, formula)
    assert left_result or right_result
    formula_counting = parse("AG(q -> X X q)")
    assert check(left, formula_counting) != check(right, formula_counting)
