"""Unit and property tests for the parallel portfolio engine.

The chaos property test at the bottom is the contract the whole runtime
stack exists for: under seeded fault injection the portfolio verdict
either **equals the bitset oracle's** or fails with a **typed
ReproError** — never a silently wrong answer, never a deadlock (a hard
``SIGALRM`` deadline fails the test if a race wedges), never a leaked
worker process.
"""

import contextlib
import multiprocessing
import signal

import pytest

from repro.errors import (
    BudgetExceededError,
    EngineCrashError,
    EngineDisagreementError,
    FragmentError,
    InconclusiveError,
    ModelCheckingError,
    ReproError,
)
from repro.mc.bitset import make_ctl_checker
from repro.runtime.chaos import ChaosConfig
from repro.runtime.portfolio import (
    DEFAULT_RACE_ENGINES,
    PortfolioModelChecker,
    builder_source,
    structure_source,
)
from repro.runtime.supervisor import TaskOutcome
from repro.systems.mutex import build_mutex, mutex_safety
from repro.systems.token_ring import build_token_ring, ring_mutual_exclusion

#: Forces chaos off inside workers even when REPRO_CHAOS is exported
#: (the CI chaos lane); the chaos tests arm their own seeded configs.
_NO_CHAOS = ChaosConfig()


class _RaceDeadline(Exception):
    pass


@contextlib.contextmanager
def _hard_timeout(seconds):
    """Fail the test (don't hang the suite) if a race never returns."""

    def _expired(signum, frame):
        raise _RaceDeadline("portfolio race exceeded %ds" % seconds)

    previous = signal.signal(signal.SIGALRM, _expired)
    signal.alarm(seconds)
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)


class TestConstruction:
    def test_fairness_is_rejected_as_a_fragment_error(self):
        with pytest.raises(FragmentError):
            PortfolioModelChecker(structure=object(), fairness=object())

    def test_exactly_one_of_structure_or_sources(self):
        with pytest.raises(ModelCheckingError):
            PortfolioModelChecker()
        with pytest.raises(ModelCheckingError):
            PortfolioModelChecker(
                structure=object(), sources={"bitset": structure_source(object())}
            )

    def test_unknown_engines_are_rejected(self):
        with pytest.raises(ModelCheckingError, match="naive"):
            PortfolioModelChecker(structure=object(), engines=("bitset", "naive"))

    def test_workers_must_be_positive(self):
        with pytest.raises(ModelCheckingError):
            PortfolioModelChecker(structure=object(), workers=0)

    def test_workers_cap_trims_the_race_in_launch_order(self):
        checker = PortfolioModelChecker(structure=object(), workers=2)
        assert checker.engines == DEFAULT_RACE_ENGINES[:2]

    def test_engine_selection(self):
        checker = PortfolioModelChecker(structure=object(), engines=("bdd", "ic3"))
        assert checker.engines == ("bdd", "ic3")
        by_source = PortfolioModelChecker(
            sources={"bmc": structure_source(object())}
        )
        assert by_source.engines == ("bmc",)

    def test_only_the_initial_state_is_decided(self):
        checker = PortfolioModelChecker(structure=object(), chaos=_NO_CHAOS)
        with pytest.raises(ModelCheckingError):
            checker.check(object(), state="s3")


def _outcome(label, status, verdict=None, late=False, fields=None, message=""):
    outcome = TaskOutcome(label, label)
    outcome.status = status
    if verdict is not None:
        outcome.result = {"engine": label, "verdict": verdict, "detail": ""}
    outcome.late = late
    outcome.fields = dict(fields or {})
    outcome.message = message
    return outcome


class TestMergeSemantics:
    """Merging is pure bookkeeping over TaskOutcomes — test it process-free."""

    def _checker(self):
        return PortfolioModelChecker(structure=object(), chaos=_NO_CHAOS)

    def test_the_non_late_finisher_wins(self):
        checker = self._checker()
        outcomes = {
            "bitset": _outcome("bitset", "ok", verdict=True, late=True),
            "bmc": _outcome("bmc", "ok", verdict=True),
            "bdd": _outcome("bdd", "cancelled"),
        }
        outcomes["bmc"].result["detail"] = "k-induction@1"
        assert checker._merge(None, outcomes) is True
        assert checker.last_detail == "won by bmc (k-induction@1)"
        assert checker.last_outcomes["bdd"] == "cancelled"

    def test_a_disagreeing_late_loser_is_never_masked(self):
        checker = self._checker()
        outcomes = {
            "bitset": _outcome("bitset", "ok", verdict=True),
            "bmc": _outcome("bmc", "ok", verdict=False, late=True),
        }
        with pytest.raises(EngineDisagreementError) as excinfo:
            checker._merge("AG p", outcomes)
        assert excinfo.value.verdicts == {"bitset": True, "bmc": False}
        assert excinfo.value.formula == "AG p"

    def test_all_fragment_degrades_to_fragment_error(self):
        outcomes = {
            name: _outcome(name, "fragment") for name in ("bmc", "ic3")
        }
        with pytest.raises(FragmentError):
            self._checker()._merge(None, outcomes)

    def test_all_dead_degrades_to_engine_crash_error(self):
        checker = self._checker()
        outcomes = {
            "bitset": _outcome("bitset", "crashed"),
            "bdd": _outcome("bdd", "hung"),
            "bmc": _outcome("bmc", "garbled"),
        }
        with pytest.raises(EngineCrashError) as excinfo:
            checker._merge(None, outcomes)
        assert set(excinfo.value.outcomes) == {"bitset", "bdd", "bmc"}
        assert "no conclusive verdict" in checker.last_detail

    def test_dead_or_budget_degrades_to_budget_error(self):
        outcomes = {
            "bitset": _outcome("bitset", "crashed"),
            "bmc": _outcome(
                "bmc", "budget", fields={"resource": "sat_conflicts", "limit": 100}
            ),
        }
        with pytest.raises(BudgetExceededError) as excinfo:
            self._checker()._merge(None, outcomes)
        assert excinfo.value.resource == "sat_conflicts"
        assert excinfo.value.site == "portfolio.race"

    def test_inconclusive_report_includes_the_budget_consumed(self):
        outcomes = {
            "bmc": _outcome(
                "bmc",
                "inconclusive",
                fields={"depth_reached": 5, "conflicts_spent": 321},
            ),
            "bdd": _outcome("bdd", "cancelled"),
        }
        with pytest.raises(InconclusiveError) as excinfo:
            self._checker()._merge(None, outcomes)
        assert "budget consumed" in str(excinfo.value)
        assert "depth_reached=5" in str(excinfo.value)


def _mutex_sources(size, buggy=False):
    """The CLI's per-engine natural encodings, for a worker-side build."""
    return {
        "bitset": builder_source("repro.systems.mutex", "build_mutex", size, buggy=buggy),
        "bdd": builder_source("repro.systems.mutex", "symbolic_mutex", size, buggy=buggy),
        "bmc": builder_source(
            "repro.systems.mutex", "symbolic_mutex", size, buggy=buggy, domain="free"
        ),
        "ic3": builder_source(
            "repro.systems.mutex", "symbolic_mutex", size, buggy=buggy, domain="free"
        ),
    }


class TestRaces:
    def test_structure_race_matches_the_bitset_oracle(self):
        structure = build_mutex(3)
        formula = mutex_safety(3)
        oracle = make_ctl_checker(structure, engine="bitset").check(formula)
        checker = PortfolioModelChecker(
            structure=structure, engines=("bitset", "bdd"), chaos=_NO_CHAOS
        )
        with _hard_timeout(60):
            verdict = checker.check(formula)
        assert verdict is True
        assert bool(oracle) is True
        assert checker.last_detail.startswith("won by ")
        assert set(checker.last_outcomes) == {"bitset", "bdd"}
        assert not multiprocessing.active_children()

    def test_natural_encoding_race_refutes_the_buggy_mutex(self):
        checker = PortfolioModelChecker(
            sources=_mutex_sources(3, buggy=True), bound=8, chaos=_NO_CHAOS
        )
        assert checker.engines == DEFAULT_RACE_ENGINES
        with _hard_timeout(120):
            verdict = checker.check(mutex_safety(3))
        assert verdict is False
        assert not multiprocessing.active_children()

    def test_check_batch_races_each_formula(self):
        structure = build_mutex(2)
        formulas = {"safety": mutex_safety(2)}
        checker = PortfolioModelChecker(
            structure=structure, engines=("bitset",), chaos=_NO_CHAOS
        )
        with _hard_timeout(60):
            results = checker.check_batch(formulas)
        assert results == {"safety": True}


#: Seeded fault schedules for the never-wrong/never-deadlock property.
#: kill/hang exercise crash detection and restart; garble exercises the
#: digest check.  (oom is exercised via --memory-limit in the CLI lane:
#: an in-process allocation hog would destabilise the test runner.)
_CHAOS_RATES = {"kill": 0.4, "hang": 0.3, "garble": 0.3}


@pytest.mark.parametrize("seed", [0, 1, 2])
@pytest.mark.parametrize(
    "builder, size, buggy, formula_factory",
    [
        (build_mutex, 3, False, mutex_safety),
        (build_token_ring, 4, True, ring_mutual_exclusion),
    ],
    ids=["mutex3-ok", "ring4-buggy"],
)
def test_chaos_is_never_wrong_and_never_deadlocks(seed, builder, size, buggy, formula_factory):
    """Satellite property: under seeded chaos the portfolio verdict equals
    the bitset oracle's or fails with a typed ReproError — wrong-and-confident
    is the one outcome that must not exist."""
    structure = builder(size, buggy=buggy)
    formula = formula_factory(size)
    oracle = make_ctl_checker(structure, engine="bitset").check(formula)
    checker = PortfolioModelChecker(
        structure=structure,
        engines=("bitset", "bdd"),
        chaos=ChaosConfig(_CHAOS_RATES, seed=seed),
        hang_timeout=0.5,
        max_restarts=2,
        grace=0.1,
    )
    with _hard_timeout(90):
        try:
            verdict = checker.check(formula)
        except ReproError:
            # An honest, typed failure is an acceptable chaos outcome;
            # the provenance must still name every raced engine's fate.
            assert set(checker.last_outcomes) == {"bitset", "bdd"}
        else:
            assert verdict == oracle
    assert not multiprocessing.active_children(), "chaos leaked a worker process"
