"""Unit tests for the ``repro-obs`` trace-analysis toolkit (repro.obs.analyze).

Builds small synthetic artifacts in both on-disk layouts the tracing
layer writes (Perfetto trace-event documents and span JSONL) and pins
the analyses the CLI renders: per-name aggregates, the critical path,
the portfolio loser autopsy, and trace/bench diffing — plus the
``main()`` exit-code contract (0 on success, 2 on unusable input).
"""

from __future__ import annotations

import json

import pytest

from repro.obs.analyze import (
    TraceDocument,
    aggregate,
    critical_path,
    diff_bench,
    diff_traces,
    load_artifact,
    load_trace,
    main,
    portfolio_autopsy,
)


def _x(name, pid, span_id, parent_id, ts, dur, status="ok", **attrs):
    args = dict(attrs)
    args["span_id"] = span_id
    args["parent_id"] = parent_id
    if status != "ok":
        args["status"] = status
    return {
        "name": name,
        "cat": "repro",
        "ph": "X",
        "ts": ts,
        "dur": dur,
        "pid": pid,
        "tid": pid,
        "args": args,
    }


def _process_name(pid, name):
    return {"name": "process_name", "ph": "M", "pid": pid, "tid": pid, "args": {"name": name}}


def _race_document():
    """A miniature portfolio-race trace in our own sink's layout.

    Coordinator pid 100 holds the race span plus an ``obs.collect``
    bookkeeping span carrying a worker label; pids 200 (bmc, the winner)
    and 300 (bdd, cancelled) hold the re-parented worker spans.
    """
    return {
        "traceEvents": [
            _process_name(100, "coordinator"),
            _process_name(200, "worker:bmc"),
            _process_name(300, "worker:bdd"),
            _x(
                "portfolio.race",
                100,
                1,
                None,
                0,
                1000,
                winner="won by bmc (CONCLUSIVE)",
                engines="bmc,bdd",
            ),
            _x("mc.check", 200, 2, 1, 10, 800, worker="bmc"),
            _x("sat.solve", 200, 3, 2, 20, 400, worker="bmc"),
            _x(
                "mc.check",
                300,
                4,
                1,
                10,
                900,
                status="error:CancelledError",
                worker="bdd",
            ),
            _x("obs.collect", 100, 5, 1, 950, 40, worker="bmc"),
        ],
        "displayTimeUnit": "ms",
    }


@pytest.fixture
def race_trace(tmp_path):
    path = tmp_path / "race.json"
    path.write_text(json.dumps(_race_document()))
    return str(path)


# -- loading ----------------------------------------------------------------


def test_load_perfetto_links_the_tree_and_lane_labels(race_trace):
    doc = load_trace(race_trace)
    assert doc.pids == [100, 200, 300]
    assert doc.lanes == {100: None, 200: "bmc", 300: "bdd"}
    [race] = doc.roots
    assert race.name == "portfolio.race"
    assert sorted(c.name for c in race.children) == [
        "mc.check",
        "mc.check",
        "obs.collect",
    ]
    solve = next(s for s in doc.spans if s.name == "sat.solve")
    assert solve.lane == "bmc"
    assert solve.start_ns == 20_000 and solve.end_ns == 420_000  # µs -> ns
    loser = next(s for s in doc.spans if s.pid == 300)
    assert loser.status == "error:CancelledError"
    # span_id/parent_id/status are structure, not attributes.
    assert "span_id" not in solve.attrs and "parent_id" not in solve.attrs


def test_load_jsonl_reads_span_rows_and_worker_attrs(tmp_path):
    rows = [
        {
            "kind": "span",
            "span_id": 1,
            "parent_id": None,
            "name": "mc.check",
            "start_ns": 0,
            "end_ns": 100,
            "pid": 9,
            "attrs": {"worker": "bmc"},
        },
        {"kind": "event", "name": "bdd.gc", "ts_ns": 5, "attrs": {}},
        {
            "kind": "span",
            "span_id": 2,
            "parent_id": 1,
            "name": "sat.solve",
            "start_ns": 10,
            "end_ns": 60,
            "status": "ok",
            "attrs": {},
        },
    ]
    path = tmp_path / "trace.jsonl"
    path.write_text("\n".join(json.dumps(row) for row in rows) + "\n")
    doc = load_trace(str(path))
    assert [s.name for s in doc.spans] == ["mc.check", "sat.solve"]
    [root] = doc.roots
    assert root.lane == "bmc"  # backfilled from the worker attribute
    assert [c.name for c in root.children] == ["sat.solve"]


def test_load_perfetto_infers_containment_for_foreign_traces(tmp_path):
    # A trace from another tool: no span_id args, nesting only implied
    # by interval containment (per process).
    document = {
        "traceEvents": [
            {"name": "outer", "ph": "X", "ts": 0, "dur": 100, "pid": 1, "tid": 1},
            {"name": "inner", "ph": "X", "ts": 10, "dur": 50, "pid": 1, "tid": 1},
            {"name": "later", "ph": "X", "ts": 70, "dur": 20, "pid": 1, "tid": 1},
            {"name": "other", "ph": "X", "ts": 5, "dur": 10, "pid": 2, "tid": 2},
        ]
    }
    path = tmp_path / "foreign.json"
    path.write_text(json.dumps(document))
    doc = load_trace(str(path))
    outer = next(s for s in doc.spans if s.name == "outer")
    assert {c.name for c in outer.children} == {"inner", "later"}
    other = next(s for s in doc.spans if s.name == "other")
    assert other in doc.roots  # different pid: never nested under pid 1


def test_load_artifact_sniffs_bench_vs_trace(tmp_path, race_trace):
    bench = tmp_path / "BENCH_a.json"
    bench.write_text(json.dumps({"benchmarks": []}))
    assert load_artifact(str(bench))[0] == "bench"
    kind, doc = load_artifact(race_trace)
    assert kind == "trace"
    assert isinstance(doc, TraceDocument)
    unknown = tmp_path / "other.json"
    unknown.write_text(json.dumps({"foo": 1}))
    with pytest.raises(ValueError):
        load_artifact(str(unknown))


# -- analyses ---------------------------------------------------------------


def test_aggregate_counts_totals_and_self_time(race_trace):
    rows = aggregate(load_trace(race_trace))
    assert rows["mc.check"]["count"] == 2
    assert rows["mc.check"]["total_ns"] == 1_700_000
    assert rows["mc.check"]["max_ns"] == 900_000
    assert rows["mc.check"]["mean_ns"] == pytest.approx(850_000)
    # The winner's mc.check spent 400µs in sat.solve; self time excludes it.
    assert rows["mc.check"]["self_ns"] == (800_000 - 400_000) + 900_000
    assert rows["sat.solve"]["self_ns"] == 400_000


def test_critical_path_follows_the_last_finisher(race_trace):
    path = critical_path(load_trace(race_trace))
    # The race ends waiting on the obs.collect tail (ends at 990µs, after
    # the cancelled bdd worker's 910µs).
    assert [step["name"] for step in path] == ["portfolio.race", "obs.collect"]
    root = path[0]
    assert root["pct_of_root"] == pytest.approx(100.0)
    assert root["dur_ns"] == 1_000_000
    assert path[1]["lane"] == "bmc"


def test_critical_path_of_an_empty_trace_is_empty():
    assert critical_path(TraceDocument([])) == []


def test_portfolio_autopsy_reports_winner_and_losers(race_trace):
    [autopsy] = portfolio_autopsy(load_trace(race_trace))
    assert autopsy["winner"] == "bmc"
    assert autopsy["engines_raced"] == "bmc,bdd"
    assert autopsy["dur_ns"] == 1_000_000
    by_engine = {row["engine"]: row for row in autopsy["engines"]}
    assert set(by_engine) == {"bmc", "bdd"}  # obs.collect never counted
    bmc = by_engine["bmc"]
    assert bmc["won"] and bmc["spans"] == 2 and bmc["pids"] == [200]
    # Lane roots only: sat.solve is inside mc.check, not added again.
    assert bmc["busy_ns"] == 800_000
    assert bmc["last_span"] == "mc.check" and bmc["last_status"] == "ok"
    bdd = by_engine["bdd"]
    assert not bdd["won"]
    assert bdd["busy_ns"] == 900_000
    assert bdd["last_status"] == "error:CancelledError"


def test_diff_traces_attributes_the_shift_per_span_name(tmp_path, race_trace):
    slower = _race_document()
    for entry in slower["traceEvents"]:
        if entry.get("ph") == "X" and entry["name"] == "sat.solve":
            entry["dur"] = 700  # +300µs
    path = tmp_path / "slower.json"
    path.write_text(json.dumps(slower))
    rows = diff_traces(load_trace(race_trace), load_trace(str(path)))
    assert rows[0]["name"] == "sat.solve"  # largest |delta| first
    assert rows[0]["delta_ns"] == 300_000
    assert rows[0]["count_a"] == rows[0]["count_b"] == 1
    unchanged = next(row for row in rows if row["name"] == "portfolio.race")
    assert unchanged["delta_ns"] == 0


def test_diff_bench_pairs_by_fullname_and_reports_ratio():
    a = {"benchmarks": [{"fullname": "bench_a", "mean": 1.0}, {"fullname": "gone", "mean": 2.0}]}
    b = {"benchmarks": [{"fullname": "bench_a", "mean": 1.5}, {"fullname": "new", "mean": 0.5}]}
    rows = diff_bench(a, b)
    assert rows[0]["name"] == "bench_a"
    assert rows[0]["delta"] == pytest.approx(0.5)
    assert rows[0]["ratio"] == pytest.approx(1.5)
    partial = {row["name"]: row for row in rows}
    assert partial["gone"]["mean_b"] is None and "delta" not in partial["gone"]
    assert partial["new"]["mean_a"] is None


# -- the CLI ----------------------------------------------------------------


def test_main_report_renders_all_three_sections(race_trace, capsys):
    assert main(["report", race_trace]) == 0
    out = capsys.readouterr().out
    assert "3 process(es)" in out
    assert "== aggregates" in out
    assert "== critical path ==" in out
    assert "== portfolio autopsy" in out
    assert "won by bmc (CONCLUSIVE)" in out
    assert "error:CancelledError" in out


def test_main_report_json_payload(race_trace, capsys):
    assert main(["report", race_trace, "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["spans"] == 5
    assert payload["pids"] == [100, 200, 300]
    assert payload["critical_path"][0]["name"] == "portfolio.race"
    assert payload["portfolio"][0]["winner"] == "bmc"
    assert "mc.check" in payload["aggregates"]


def test_main_diff_traces_and_json(race_trace, capsys):
    assert main(["diff", race_trace, race_trace]) == 0
    out = capsys.readouterr().out
    assert "delta_ms" in out and "portfolio.race" in out
    assert main(["diff", race_trace, race_trace, "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["kind"] == "trace"
    assert all(row["delta_ns"] == 0 for row in payload["rows"])


def test_main_diff_bench_files(tmp_path, capsys):
    a = tmp_path / "BENCH_a.json"
    b = tmp_path / "BENCH_b.json"
    a.write_text(json.dumps({"benchmarks": [{"fullname": "x", "mean": 1.0}]}))
    b.write_text(json.dumps({"benchmarks": [{"fullname": "x", "mean": 2.0}]}))
    assert main(["diff", str(a), str(b)]) == 0
    out = capsys.readouterr().out
    assert "+1.000000" in out
    assert main(["diff", str(a), str(b), "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["kind"] == "bench"
    assert payload["rows"][0]["ratio"] == pytest.approx(2.0)


def test_main_exit_2_on_unusable_input(tmp_path, race_trace, capsys):
    assert main(["report", str(tmp_path / "missing.json")]) == 2
    assert "repro-obs:" in capsys.readouterr().err
    bench = tmp_path / "BENCH_a.json"
    bench.write_text(json.dumps({"benchmarks": []}))
    assert main(["diff", race_trace, str(bench)]) == 2  # trace vs bench
    assert "cannot diff" in capsys.readouterr().err
