"""Unit tests for the formula AST (:mod:`repro.logic.ast`)."""

from repro.logic.ast import (
    And,
    Atom,
    ExactlyOne,
    Exists,
    Finally,
    ForAll,
    Globally,
    Implies,
    IndexExists,
    IndexForall,
    IndexedAtom,
    Next,
    Not,
    Or,
    TrueLiteral,
    Until,
    subformulas,
    walk,
)


def test_atoms_compare_structurally():
    assert Atom("p") == Atom("p")
    assert Atom("p") != Atom("q")
    assert IndexedAtom("c", "i") == IndexedAtom("c", "i")
    assert IndexedAtom("c", "i") != IndexedAtom("c", 1)


def test_nodes_are_hashable_and_usable_as_dict_keys():
    table = {Atom("p"): 1, Not(Atom("p")): 2, Until(Atom("p"), Atom("q")): 3}
    assert table[Atom("p")] == 1
    assert table[Not(Atom("p"))] == 2
    assert table[Until(Atom("p"), Atom("q"))] == 3


def test_nodes_are_immutable():
    import dataclasses

    import pytest

    with pytest.raises(dataclasses.FrozenInstanceError):
        Atom("p").name = "q"


def test_children_of_leaf_nodes_is_empty():
    assert Atom("p").children() == ()
    assert TrueLiteral().children() == ()
    assert ExactlyOne("t").children() == ()
    assert IndexedAtom("c", 3).children() == ()


def test_children_preserve_syntactic_order():
    formula = Until(Atom("p"), Atom("q"))
    assert formula.children() == (Atom("p"), Atom("q"))
    formula = Implies(Atom("a"), Atom("b"))
    assert formula.children() == (Atom("a"), Atom("b"))


def test_children_of_quantifiers_skip_the_variable():
    formula = IndexForall("i", IndexedAtom("c", "i"))
    assert formula.children() == (IndexedAtom("c", "i"),)
    formula = IndexExists("j", Not(IndexedAtom("d", "j")))
    assert formula.children() == (Not(IndexedAtom("d", "j")),)


def test_walk_yields_every_node_in_preorder():
    formula = And(Atom("p"), Or(Atom("q"), Not(Atom("r"))))
    nodes = list(walk(formula))
    assert nodes[0] == formula
    assert Atom("p") in nodes
    assert Atom("r") in nodes
    assert Not(Atom("r")) in nodes
    assert len(nodes) == 6


def test_subformulas_children_before_parents():
    formula = Exists(Until(Atom("p"), And(Atom("q"), Atom("r"))))
    ordered = subformulas(formula)
    assert ordered[-1] == formula
    assert ordered.index(Atom("q")) < ordered.index(And(Atom("q"), Atom("r")))
    assert ordered.index(And(Atom("q"), Atom("r"))) < ordered.index(
        Until(Atom("p"), And(Atom("q"), Atom("r")))
    )


def test_subformulas_deduplicates_shared_subterms():
    shared = Atom("p")
    formula = And(shared, Not(shared))
    ordered = subformulas(formula)
    assert ordered.count(Atom("p")) == 1
    assert len(ordered) == 3


def test_operator_overloads_build_derived_nodes():
    p, q = Atom("p"), Atom("q")
    assert (~p) == Not(p)
    assert (p & q) == And(p, q)
    assert (p | q) == Or(p, q)
    assert (p >> q) == Implies(p, q)


def test_str_round_trips_through_parser():
    from repro.logic.parser import parse

    formulas = [
        ForAll(Globally(Implies(IndexedAtom("d", "i"), ForAll(Finally(IndexedAtom("c", "i")))))),
        Exists(Until(Atom("p"), Atom("q"))),
        IndexForall("i", ForAll(Globally(IndexedAtom("c", "i")))),
        Next(Next(Atom("p"))),
        ExactlyOne("t"),
    ]
    for formula in formulas:
        assert parse(str(formula)) == formula
