"""Unit tests for the ICTL* checker, counterexample extraction, and the lasso oracle."""

import pytest

from repro.errors import FragmentError, RestrictionError
from repro.kripke.paths import Lasso
from repro.kripke.structure import KripkeStructure
from repro.logic.builders import (
    AF,
    AG,
    EF,
    F,
    G,
    U,
    atom,
    exactly_one,
    iatom,
    implies,
    index_exists,
    index_forall,
    lnot,
)
from repro.logic.parser import parse
from repro.mc.counterexample import (
    counterexample_af,
    counterexample_ag,
    witness_ef,
    witness_eg,
    witness_eu,
)
from repro.mc.indexed import ICTLStarModelChecker, check, satisfaction_set
from repro.mc.oracle import find_lasso_witness, lasso_satisfies, simple_lasso_exists
from repro.systems import figures, token_ring


# ---------------------------------------------------------------------------
# ICTL* checking
# ---------------------------------------------------------------------------


def test_index_forall_instantiates_over_index_set(ring2):
    checker = ICTLStarModelChecker(ring2)
    assert checker.check(index_forall("i", AG(implies(iatom("c", "i"), iatom("t", "i")))))


def test_index_exists_semantics(ring2):
    checker = ICTLStarModelChecker(ring2)
    # Some process eventually enters its critical region.
    assert checker.check(index_exists("i", EF(iatom("c", "i"))))
    # No process is critical initially.
    assert not checker.check(index_exists("i", iatom("c", "i")))


def test_exactly_one_token(ring2, ring3):
    for structure in (ring2, ring3):
        checker = ICTLStarModelChecker(structure)
        assert checker.check(AG(exactly_one("t")))


def test_exactly_one_is_false_when_no_index_satisfies(ring2):
    checker = ICTLStarModelChecker(ring2)
    assert not checker.check(exactly_one("c"))  # initially nobody is critical


def test_restrictions_enforced_by_default(ring2):
    checker = ICTLStarModelChecker(ring2)
    nested = figures.fig41_counting_formula(2)
    with pytest.raises(RestrictionError):
        checker.check(nested)


def test_restrictions_can_be_disabled(ring2):
    checker = ICTLStarModelChecker(ring2, enforce_restrictions=False)
    formula = index_exists("i", EF(iatom("c", "i")))
    assert checker.check(formula)


def test_unrestricted_mode_still_rejects_free_variables(ring2):
    checker = ICTLStarModelChecker(ring2, enforce_restrictions=False)
    with pytest.raises(FragmentError):
        checker.check(AG(iatom("c", "i")))


def test_concrete_indices_allowed_without_restrictions(ring2):
    checker = ICTLStarModelChecker(ring2, enforce_restrictions=False)
    assert checker.check(AG(implies(iatom("d", 1), AF(iatom("c", 1)))))


def test_module_level_helpers(ring2):
    formula = token_ring.property_critical_implies_token()
    assert check(ring2, formula)
    assert satisfaction_set(ring2, formula) == ring2.states


def test_ictl_results_memoised(ring2):
    checker = ICTLStarModelChecker(ring2)
    formula = token_ring.property_eventual_entry()
    assert checker.satisfaction_set(formula) is checker.satisfaction_set(formula)


def test_non_ctl_ictl_formula_uses_ctlstar_path(ring2):
    checker = ICTLStarModelChecker(ring2, enforce_restrictions=False)
    # ∨i E(G F c_i): some process is critical infinitely often along some path.
    formula = index_exists("i", parse("E G F c[i]"))
    assert checker.check(formula)


# ---------------------------------------------------------------------------
# Counterexamples and witnesses
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def try_crit():
    return KripkeStructure(
        states=["idle", "try", "crit"],
        transitions=[("idle", "try"), ("try", "try"), ("try", "crit"), ("crit", "idle")],
        labeling={"idle": {"n"}, "try": {"t"}, "crit": {"c"}},
        initial_state="idle",
    )


def test_witness_ef_returns_shortest_path(try_crit):
    path = witness_ef(try_crit, atom("c"))
    assert path == ["idle", "try", "crit"]


def test_witness_ef_none_when_unreachable(try_crit):
    assert witness_ef(try_crit, atom("zzz")) is None


def test_witness_eu(try_crit):
    path = witness_eu(try_crit, atom("t"), atom("c"), start="try")
    assert path is not None
    assert path[-1] == "crit"
    assert all(state == "try" for state in path[:-1])
    assert witness_eu(try_crit, atom("zzz"), atom("c"), start="idle") is None


def test_witness_eg_returns_lasso_inside_satisfying_states(try_crit):
    lasso = witness_eg(try_crit, atom("t"), start="try")
    assert lasso is not None
    carrier = set(lasso.stem) | set(lasso.cycle)
    assert carrier == {"try"}
    assert witness_eg(try_crit, atom("c")) is None


def test_counterexample_ag_finds_violating_state(try_crit):
    path = counterexample_ag(try_crit, lnot(atom("c")))
    assert path is not None
    assert path[-1] == "crit"
    assert counterexample_ag(try_crit, lnot(atom("zzz"))) is None


def test_counterexample_af_finds_avoiding_lasso(try_crit):
    lasso = counterexample_af(try_crit, atom("c"))
    assert lasso is not None
    assert "crit" not in set(lasso.stem) | set(lasso.cycle)
    # AF(n ∨ t ∨ c) holds, so there is no counterexample.
    assert counterexample_af(try_crit, parse("n | t | c")) is None


@pytest.mark.parametrize("engine", ["naive", "bitset", "bdd"])
def test_witnesses_engine_generic(try_crit, engine):
    """Every engine drives the same extraction algorithms to valid witnesses."""
    from repro.kripke.paths import is_lasso, is_path

    path = witness_ef(try_crit, atom("c"), engine=engine)
    assert path == ["idle", "try", "crit"]
    assert is_path(try_crit, path)
    lasso = witness_eg(try_crit, atom("t"), start="try", engine=engine)
    assert lasso is not None and is_lasso(try_crit, lasso)


def test_witness_accepts_prebuilt_checker(try_crit):
    from repro.mc import make_ctl_checker

    checker = make_ctl_checker(try_crit, engine="bitset")
    assert witness_ef(checker, atom("c")) == ["idle", "try", "crit"]
    # The checker's satisfaction memo is reused across calls.
    assert witness_eu(checker, atom("t"), atom("c"), start="try")[-1] == "crit"


def test_checkers_memoised_per_structure(try_crit):
    from repro.mc import resolve_checker

    first = resolve_checker(try_crit, "bitset")
    assert resolve_checker(try_crit, "bitset") is first
    assert resolve_checker(try_crit, "naive") is not first
    # An explicit checker argument passes through untouched.
    assert resolve_checker(first) is first


def test_witness_eu_prefix_invariant_pinned(try_crit):
    """Pin the invariant the removed re-verification guard double-checked."""
    path = witness_eu(try_crit, atom("t"), atom("c"), start="idle")
    # "idle" starts no E[t U c] path satisfying t at position 0, so no witness.
    assert path is None
    path = witness_eu(try_crit, atom("t"), atom("c"), start="try")
    assert path is not None
    assert all(state == "try" for state in path[:-1])


def test_counterexamples_on_the_ring(ring2):
    # AG(¬c_1) is false: extract a path reaching a state where process 1 is critical.
    path = counterexample_ag(ring2, lnot(iatom("c", 1)))
    assert path is not None
    final = path[-1]
    assert 1 in final.critical
    # AF(c_1) is false from the initial state: process 1 may never request.
    lasso = counterexample_af(ring2, iatom("c", 1))
    assert lasso is not None
    assert all(1 not in state.critical for state in lasso.cycle)


# ---------------------------------------------------------------------------
# The lasso oracle
# ---------------------------------------------------------------------------


def test_lasso_satisfies_simple_cases(toggle_structure):
    lasso = Lasso(stem=(), cycle=("on", "off"))
    assert lasso_satisfies(toggle_structure, lasso, G(F(atom("p"))))
    assert lasso_satisfies(toggle_structure, lasso, U(atom("p"), atom("q")))
    assert not lasso_satisfies(toggle_structure, lasso, G(atom("p")))
    assert lasso_satisfies(toggle_structure, lasso, F(atom("q")))


def test_lasso_satisfies_respects_stem(toggle_structure):
    lasso = Lasso(stem=("on",), cycle=("off", "on"))
    assert lasso_satisfies(toggle_structure, lasso, atom("p"))
    assert not lasso_satisfies(toggle_structure, lasso, atom("q"))


def test_lasso_satisfies_rejects_state_formulas(toggle_structure):
    from repro.errors import ModelCheckingError
    from repro.logic.builders import E

    lasso = Lasso(stem=(), cycle=("on", "off"))
    with pytest.raises(ModelCheckingError):
        lasso_satisfies(toggle_structure, lasso, E(F(atom("p"))))


def test_oracle_agrees_with_ltl_core_on_witness_existence(branching_structure):
    formulas = [F(atom("p")), G(lnot(atom("q"))), U(lnot(atom("q")), atom("p")), G(F(atom("p")))]
    from repro.mc.ltl import exists_path_satisfying

    for formula in formulas:
        for state in branching_structure.states:
            if simple_lasso_exists(branching_structure, state, formula):
                assert exists_path_satisfying(branching_structure, state, formula)


def test_find_lasso_witness_returns_satisfying_lasso(branching_structure):
    witness = find_lasso_witness(branching_structure, "a", G(F(atom("p"))))
    assert witness is not None
    assert lasso_satisfies(branching_structure, witness, G(F(atom("p"))))
    assert find_lasso_witness(branching_structure, "b", F(atom("q"))) is None
