"""Unit tests for the rate-limited heartbeat reporter."""

from __future__ import annotations

import io

from repro.obs.progress import (
    ProgressReporter,
    disable_progress,
    enable_progress,
    get_reporter,
    heartbeat,
)


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def advance(self, seconds: float) -> None:
        self.now += seconds

    def __call__(self) -> float:
        return self.now


def test_heartbeat_is_rate_limited_per_source():
    clock = FakeClock()
    stream = io.StringIO()
    reporter = ProgressReporter(interval=0.5, stream=stream, clock=clock)
    assert reporter.heartbeat("ic3", frames=1)
    assert not reporter.heartbeat("ic3", frames=2)  # within the interval
    assert reporter.heartbeat("bmc", k=3)  # other sources are independent
    clock.advance(0.6)
    assert reporter.heartbeat("ic3", frames=9)
    assert reporter.emitted == 3
    assert reporter.suppressed == 1
    lines = stream.getvalue().splitlines()
    assert lines[0].startswith("[progress] ic3 ")
    assert "frames=1" in lines[0]
    assert "k=3" in lines[1]
    assert "frames=9" in lines[2]


def test_force_bypasses_the_rate_limit():
    clock = FakeClock()
    stream = io.StringIO()
    reporter = ProgressReporter(interval=10.0, stream=stream, clock=clock)
    reporter.heartbeat("experiments", experiment="E1")
    assert reporter.heartbeat("experiments", force=True, experiment="E2")
    assert reporter.suppressed == 0


def test_fields_render_sorted_with_elapsed_time():
    clock = FakeClock()
    stream = io.StringIO()
    reporter = ProgressReporter(interval=0.5, stream=stream, clock=clock)
    clock.advance(2.125)
    reporter.heartbeat("bdd", rounds=4, live=100)
    [line] = stream.getvalue().splitlines()
    assert line == "[progress] bdd +2.1s live=100 rounds=4"


def test_module_level_heartbeat_is_noop_until_enabled():
    disable_progress()
    assert get_reporter() is None
    assert heartbeat("ic3", frames=1) is False  # no reporter: nothing printed
    stream = io.StringIO()
    reporter = enable_progress(interval=0.0, stream=stream)
    try:
        assert get_reporter() is reporter
        assert heartbeat("ic3", frames=1)
        assert "frames=1" in stream.getvalue()
    finally:
        assert disable_progress() is reporter
    assert heartbeat("ic3", frames=2) is False
