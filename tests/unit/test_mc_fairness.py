"""Unit tests for fairness-constrained CTL checking across all three engines."""

import pytest

from repro.errors import FragmentError, ModelCheckingError, ValidationError
from repro.kripke.paths import is_lasso
from repro.kripke.structure import IndexedProp, KripkeStructure
from repro.logic.ast import TrueLiteral
from repro.logic.builders import (
    AF,
    AG,
    AX,
    EF,
    EG,
    EX,
    atom,
    iatom,
    index_forall,
    lnot,
    lor,
)
from repro.logic.parser import parse
from repro.mc import (
    FairnessConstraint,
    ICTLStarModelChecker,
    counterexample_af,
    crosscheck_ctl_engines,
    make_ctl_checker,
    normalize_fairness,
    resolve_checker,
    witness_eg,
)
from repro.mc.bitset import CTL_ENGINES
from repro.systems import token_ring


# ---------------------------------------------------------------------------
# The constraint object
# ---------------------------------------------------------------------------


def test_constraint_requires_at_least_one_condition():
    with pytest.raises(ModelCheckingError):
        FairnessConstraint(conditions=())


def test_constraint_rejects_non_ctl_conditions():
    from repro.logic.builders import G

    with pytest.raises(FragmentError):
        FairnessConstraint(conditions=(G(atom("p")),))  # bare path formula


def test_constraint_rejects_index_quantifiers():
    with pytest.raises(FragmentError):
        FairnessConstraint(conditions=(index_forall("i", iatom("d", "i")),))


def test_normalize_fairness_accepts_formula_and_iterables():
    assert normalize_fairness(None) is None
    single = normalize_fairness(atom("p"))
    assert isinstance(single, FairnessConstraint) and len(single) == 1
    double = normalize_fairness([atom("p"), atom("q")])
    assert len(double) == 2
    assert normalize_fairness(double) is double


def test_constraint_is_hashable_and_name_ignored_by_equality():
    left = FairnessConstraint(conditions=(atom("p"),), name="a")
    right = FairnessConstraint(conditions=(atom("p"),), name="b")
    assert left == right
    assert hash(left) == hash(right)


# ---------------------------------------------------------------------------
# Fair semantics on a hand-built structure
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def two_loops():
    """``s0`` branches to the ``a``-loop (label p) and the ``b``-loop (label q)."""
    return KripkeStructure(
        states=["s0", "a", "b"],
        transitions=[("s0", "a"), ("s0", "b"), ("a", "a"), ("b", "b")],
        labeling={"s0": set(), "a": {"p"}, "b": {"q"}},
        initial_state="s0",
    )


@pytest.fixture(scope="module")
def visit_q():
    return FairnessConstraint(conditions=(atom("q"),), name="visit q infinitely often")


@pytest.mark.parametrize("engine", CTL_ENGINES)
def test_fair_states_excludes_starving_loop(two_loops, engine, visit_q):
    checker = make_ctl_checker(two_loops, engine=engine, fairness=visit_q)
    # Only the b-loop visits q infinitely often; a fair path from s0 exists too.
    assert checker.fair_states() == frozenset({"s0", "b"})


@pytest.mark.parametrize("engine", CTL_ENGINES)
def test_fair_af_differs_from_plain_af(two_loops, engine, visit_q):
    plain = make_ctl_checker(two_loops, engine=engine)
    fair = make_ctl_checker(two_loops, engine=engine, fairness=visit_q)
    formula = AF(atom("q"))
    # Plain CTL: the a-loop avoids q forever.
    assert not plain.check(formula)
    # Fair CTL: every fair path from s0 ends up in the b-loop.
    assert fair.check(formula)


@pytest.mark.parametrize("engine", CTL_ENGINES)
def test_fair_eg_restricts_to_fair_components(two_loops, engine, visit_q):
    fair = make_ctl_checker(two_loops, engine=engine, fairness=visit_q)
    # EG ¬p under fairness: the b-loop (and s0 through it); plain adds nothing
    # here, but EG p becomes *empty* fairly (the p-loop is unfair).
    assert fair.satisfaction_set(EG(lnot(atom("p")))) == frozenset({"s0", "b"})
    assert fair.satisfaction_set(EG(atom("p"))) == frozenset()


@pytest.mark.parametrize("engine", CTL_ENGINES)
def test_fair_ex_and_ax_restrict_to_fair_targets(two_loops, engine, visit_q):
    fair = make_ctl_checker(two_loops, engine=engine, fairness=visit_q)
    # EX p is empty fairly: the only p-successor (a) starts no fair path.
    assert fair.satisfaction_set(EX(atom("p"))) == frozenset()
    # AX q holds at s0 fairly: the only fair successor is b.
    assert "s0" in fair.satisfaction_set(AX(atom("q")))


@pytest.mark.parametrize("engine", CTL_ENGINES)
def test_fairness_condition_sets_decoded(two_loops, engine, visit_q):
    checker = make_ctl_checker(two_loops, engine=engine, fairness=visit_q)
    assert checker.fairness_condition_sets() == (frozenset({"b"}),)
    assert checker.fairness is visit_q


@pytest.mark.parametrize("engine", CTL_ENGINES)
def test_plain_checker_reports_everything_fair(two_loops, engine):
    checker = make_ctl_checker(two_loops, engine=engine)
    assert checker.fairness is None
    assert checker.fair_states() == two_loops.states
    assert checker.fairness_condition_sets() == ()


def test_crosscheck_with_fairness(two_loops, visit_q):
    for formula in (AF(atom("q")), EG(atom("p")), AG(EF(atom("q")))):
        crosscheck_ctl_engines(two_loops, formula, fairness=visit_q)


# ---------------------------------------------------------------------------
# The token ring: AF t_i needs fairness
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("size", [2, 3])
def test_eventual_token_false_unfair_true_fair(size):
    ring = token_ring.build_token_ring(size)
    constraint = token_ring.ring_scheduler_fairness(size)
    formula = token_ring.property_eventual_token()
    assert not ICTLStarModelChecker(ring).check(formula)
    assert ICTLStarModelChecker(ring, fairness=constraint).check(formula)


@pytest.mark.parametrize("engine", CTL_ENGINES)
def test_eventual_token_fair_on_every_engine(ring3, engine):
    constraint = token_ring.ring_scheduler_fairness(3)
    checker = ICTLStarModelChecker(ring3, engine=engine, fairness=constraint)
    assert checker.check(token_ring.property_eventual_token())
    assert checker.fairness is constraint


def test_crosscheck_af_token_on_ring(ring3):
    constraint = token_ring.ring_scheduler_fairness(3)
    for process in (1, 2, 3):
        result = crosscheck_ctl_engines(ring3, AF(iatom("t", process)), fairness=constraint)
        # Under scheduler fairness the claim holds in *every* state.
        assert result == ring3.states


def test_section5_properties_still_hold_under_fairness(ring3):
    constraint = token_ring.ring_scheduler_fairness(3)
    checker = ICTLStarModelChecker(ring3, fairness=constraint)
    results = checker.check_batch(token_ring.ring_properties())
    assert all(results.values())


def test_scheduler_fairness_shape():
    constraint = token_ring.ring_scheduler_fairness(4)
    assert len(constraint) == 4
    assert constraint.conditions[0] == lor(iatom("d", 1), iatom("t", 1))
    with pytest.raises(Exception):
        token_ring.ring_scheduler_fairness(0)


def test_fair_ring_properties_family():
    family = token_ring.fair_ring_properties()
    assert set(family) == {"eventual_token"}


def test_symbolic_direct_encoding_fair_check():
    encoded = token_ring.symbolic_token_ring(4)
    from repro.mc.symbolic import SymbolicCTLModelChecker

    constraint = token_ring.ring_scheduler_fairness(4)
    fair = SymbolicCTLModelChecker(encoded, fairness=constraint)
    plain = SymbolicCTLModelChecker(encoded)
    formula = token_ring.property_eventual_token()
    assert fair.check(formula)
    assert not plain.check(formula)


def test_ictlstar_rejects_fair_ctlstar_fallback(ring2):
    constraint = token_ring.ring_scheduler_fairness(2)
    checker = ICTLStarModelChecker(ring2, enforce_restrictions=False, fairness=constraint)
    with pytest.raises(FragmentError):
        checker.check(parse("E G F c[1]"))  # not CTL → would need the CTL* path


# ---------------------------------------------------------------------------
# Fair witnesses and counterexamples
# ---------------------------------------------------------------------------


def test_fair_eg_witness_cycle_meets_every_fairness_set(ring3):
    constraint = token_ring.ring_scheduler_fairness(3)
    lasso = witness_eg(ring3, TrueLiteral(), fairness=constraint)
    assert lasso is not None
    assert is_lasso(ring3, lasso)
    checker = resolve_checker(ring3, "bitset", constraint)
    for condition_set in checker.fairness_condition_sets():
        assert any(state in condition_set for state in lasso.cycle)


def test_unfair_counterexample_af_token(ring3):
    lasso = counterexample_af(ring3, iatom("t", 2), engine="bitset")
    assert lasso is not None
    assert is_lasso(ring3, lasso)
    assert all(
        IndexedProp("t", 2) not in ring3.label(state) for state in lasso.positions()
    )


def test_no_fair_counterexample_when_fair_claim_holds(ring3):
    constraint = token_ring.ring_scheduler_fairness(3)
    assert counterexample_af(ring3, iatom("t", 2), fairness=constraint) is None


def test_fair_witness_from_prebuilt_checker(two_loops, visit_q):
    checker = make_ctl_checker(two_loops, engine="naive", fairness=visit_q)
    lasso = witness_eg(checker, lnot(atom("p")))
    assert lasso is not None
    assert is_lasso(two_loops, lasso)
    assert set(lasso.cycle) == {"b"}


# ---------------------------------------------------------------------------
# Satellite: existential_states enforces totality
# ---------------------------------------------------------------------------


def test_existential_states_rejects_non_total_structure():
    from repro.logic.builders import F, G
    from repro.mc.ltl import existential_states

    dead_end = KripkeStructure(
        states=["live", "dead"],
        transitions=[("live", "dead")],
        labeling={"live": {"p"}, "dead": set()},
        initial_state="live",
    )
    with pytest.raises(ValidationError):
        existential_states(dead_end, G(F(atom("p"))))
