"""Unit tests for the ``python -m repro`` command-line interface."""

import subprocess
import sys

import pytest

from repro.cli import build_parser, main


def test_parser_defaults():
    args = build_parser().parse_args([])
    assert args.engine == "bitset"
    assert args.system == "ring"
    assert args.size == 4
    assert not args.experiments
    assert not args.fairness


def test_ring_size_is_an_alias_for_size():
    assert build_parser().parse_args(["--ring-size", "7"]).size == 7
    assert build_parser().parse_args(["--size", "7"]).size == 7


def test_parser_rejects_unknown_engine():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["--engine", "zdd"])


def test_parser_rejects_unknown_system():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["--system", "philosophers"])


@pytest.mark.parametrize("engine", ["naive", "bitset", "bdd"])
def test_ring_check_all_engines(engine, capsys):
    exit_code = main(["--engine", engine, "--ring-size", "3"])
    out = capsys.readouterr().out
    assert exit_code == 0
    assert "M_3 via engine=%s" % engine in out
    assert "states      : 24" in out
    assert "transitions : 57" in out
    assert "property eventual_entry" in out
    assert "invariant one_token" in out
    assert "invariant mutual_exclusion" in out
    assert "all properties and invariants hold" in out


@pytest.mark.parametrize("system,label", [("mutex", "mutex(3)"), ("counter", "counter(3)")])
def test_other_systems_explicit_engine(system, label, capsys):
    exit_code = main(["--system", system, "--size", "3"])
    out = capsys.readouterr().out
    assert exit_code == 0
    assert "%s via engine=bitset" % label in out
    assert "all properties and invariants hold" in out


def test_mutex_bdd_engine(capsys):
    exit_code = main(["--system", "mutex", "--engine", "bdd", "--size", "3"])
    out = capsys.readouterr().out
    assert exit_code == 0
    assert "mutex(3) via engine=bdd" in out
    assert "invariant mutual_exclusion" in out


def test_bdd_engine_reports_direct_encoding(capsys):
    main(["--engine", "bdd", "--ring-size", "2"])
    out = capsys.readouterr().out
    assert "direct symbolic encoding" in out


def test_explicit_engines_report_explicit_graph(capsys):
    main(["--engine", "bitset", "--ring-size", "2"])
    out = capsys.readouterr().out
    assert "explicit state graph" in out


@pytest.mark.parametrize("engine", ["naive", "bitset", "bdd"])
def test_fairness_flag_checks_fair_liveness(engine, capsys):
    exit_code = main(["--engine", engine, "--ring-size", "3", "--fairness"])
    out = capsys.readouterr().out
    assert exit_code == 0
    assert "fairness    : 3 conditions" in out
    assert "fair liveness eventual_token       True" in out
    assert "all properties and invariants hold" in out


def test_mutex_fairness(capsys):
    exit_code = main(["--system", "mutex", "--size", "3", "--fairness"])
    out = capsys.readouterr().out
    assert exit_code == 0
    assert "fair liveness eventual_entry" in out


def test_counter_fairness_rejected(capsys):
    assert main(["--system", "counter", "--fairness"]) == 2
    assert "fairness" in capsys.readouterr().err


def test_without_fairness_no_liveness_family(capsys):
    main(["--engine", "bitset", "--ring-size", "3"])
    out = capsys.readouterr().out
    assert "fair liveness" not in out
    assert "fairness    :" not in out


def test_invalid_ring_size_exits_2(capsys):
    assert main(["--ring-size", "0"]) == 2
    assert "--ring-size" in capsys.readouterr().err


def test_fairness_with_experiments_rejected(capsys):
    assert main(["--experiments", "--fairness"]) == 2
    assert "--fairness" in capsys.readouterr().err


def test_system_with_experiments_rejected(capsys):
    assert main(["--experiments", "--system", "mutex"]) == 2
    assert "--system" in capsys.readouterr().err


def test_python_dash_m_entry_point():
    completed = subprocess.run(
        [sys.executable, "-m", "repro", "--engine", "bdd", "--ring-size", "2"],
        capture_output=True,
        text=True,
    )
    assert completed.returncode == 0, completed.stderr
    assert "M_2 via engine=bdd" in completed.stdout


def test_profile_emits_json_with_phases_and_bdd_stats(capsys):
    import json

    exit_code = main(["--engine", "bdd", "--ring-size", "3", "--profile"])
    captured = capsys.readouterr()
    assert exit_code == 0
    payload = json.loads(captured.err)
    assert payload["engine"] == "bdd"
    assert payload["system"] == "ring"
    assert payload["size"] == 3
    phase_names = [phase["name"] for phase in payload["phases"]]
    assert phase_names[0] == "build"
    assert any(name.startswith("check property ") for name in phase_names)
    assert all(phase["seconds"] >= 0 for phase in payload["phases"])
    bdd = payload["bdd"]
    assert bdd["peak_live_nodes"] >= bdd["live_nodes"] > 0
    assert set(bdd["caches"]) == {"ite", "exists", "relprod", "rename", "restrict"}


def test_profile_on_explicit_engine_has_no_bdd_section(capsys):
    import json

    exit_code = main(["--engine", "bitset", "--ring-size", "3", "--profile"])
    captured = capsys.readouterr()
    assert exit_code == 0
    payload = json.loads(captured.err)
    assert payload["engine"] == "bitset"
    assert "bdd" not in payload
    assert payload["total_seconds"] >= 0


def test_profile_with_experiments_emits_one_json_document(capsys):
    import json

    exit_code = main(["--experiments", "--quick", "--profile"])
    captured = capsys.readouterr()
    assert exit_code == 0
    payload = json.loads(captured.err)  # exactly one valid JSON doc on stderr
    assert payload["schema"] == "repro.profile/v2"
    assert payload["mode"] == "experiments"
    assert payload["engine"] == "bitset"
    assert set(payload["experiments"]) == {
        "E1_fig31",
        "E2_fig41",
        "E3_nexttime",
        "E4_fig51",
        "E5_invariants",
        "E6_properties",
        "E7_correspondence",
        "E8_explosion",
        "E9_conjecture",
        "E10_scaling",
        "E11_fairness",
        "E12_bmc",
        "E13_ic3",
    }
    assert all(payload["experiments"].values())
    assert payload["total_seconds"] >= 0
    assert payload["metrics"]  # the registry snapshot rides along


def test_bmc_ring_check(capsys):
    exit_code = main(["--engine", "bmc", "--ring-size", "6", "--bound", "5"])
    out = capsys.readouterr().out
    assert exit_code == 0
    assert "M_6 via engine=bmc" in out
    assert "state bits  : 12" in out
    assert "proved by 1-induction" in out
    assert "skipped (outside the bmc fragment)" in out
    assert "checked properties and invariants hold" in out


def test_ic3_mutex_check(capsys):
    exit_code = main(["--engine", "ic3", "--system", "mutex", "--size", "4"])
    out = capsys.readouterr().out
    assert exit_code == 0
    assert "mutex(4) via engine=ic3" in out
    assert "IC3 over the direct encoding" in out
    assert "ic3-invariant" in out
    assert "all properties and invariants hold" in out


def test_ic3_ring_check_skips_liveness(capsys):
    exit_code = main(["--engine", "ic3", "--ring-size", "3"])
    out = capsys.readouterr().out
    assert exit_code == 0
    assert "M_3 via engine=ic3" in out
    assert "invariant one_token" in out
    assert "ic3-invariant" in out
    assert "skipped (outside the ic3 fragment)" in out


def test_ic3_counter_check(capsys):
    exit_code = main(["--engine", "ic3", "--system", "counter", "--size", "8"])
    out = capsys.readouterr().out
    assert exit_code == 0
    assert "counter(8) via engine=ic3" in out
    assert "ic3-invariant" in out


def test_bmc_profile_reports_sat_statistics(capsys):
    import json

    exit_code = main(["--engine", "bmc", "--ring-size", "5", "--bound", "5", "--profile"])
    captured = capsys.readouterr()
    assert exit_code == 0
    payload = json.loads(captured.err)
    assert payload["engine"] == "bmc"
    assert payload["bound"] == 5
    sat = payload["sat"]
    assert sat["solve_calls"] > 0
    assert set(sat) >= {"conflicts", "decisions", "propagations", "learned_clauses"}
    # The BDD manager that owns the unrolled encoding is reported alongside.
    assert payload["bdd"]["live_nodes"] > 0


def test_ic3_profile_reports_frame_counters(capsys):
    import json

    exit_code = main(
        ["--engine", "ic3", "--system", "mutex", "--size", "3", "--profile"]
    )
    captured = capsys.readouterr()
    assert exit_code == 0
    payload = json.loads(captured.err)
    assert payload["engine"] == "ic3"
    assert payload["max_frames"] >= 1
    assert payload["certificate_clauses"] >= 1
    sat = payload["sat"]
    assert sat["solve_calls"] > 0
    assert sat["frames"] >= 1
    assert sat["relative_queries"] > 0
    assert sat["obligations"] >= 0
    assert sat["generalization_queries"] >= 0


def test_bound_requires_sat_engine(capsys):
    assert main(["--engine", "bitset", "--bound", "5"]) == 2
    assert "--bound" in capsys.readouterr().err
    assert main(["--engine", "bmc", "--bound", "-1"]) == 2
    assert "--bound" in capsys.readouterr().err
    assert main(["--engine", "ic3", "--bound", "0"]) == 2
    assert "frame ceiling" in capsys.readouterr().err


def test_ic3_bound_caps_frames(capsys):
    # A tiny frame ceiling makes the non-inductive pairwise-exclusion
    # invariant inconclusive rather than wrong; inconclusive checks are
    # reported but (like fragment skips) do not fail the run.
    exit_code = main(["--engine", "ic3", "--ring-size", "4", "--bound", "1"])
    out = capsys.readouterr().out
    assert exit_code == 0
    assert "INCONCLUSIVE" in out
    assert "checked properties and invariants hold" in out


def test_sat_engines_with_fairness_rejected(capsys):
    assert main(["--engine", "bmc", "--fairness"]) == 2
    assert "fairness" in capsys.readouterr().err
    assert main(["--engine", "ic3", "--fairness"]) == 2
    assert "fairness" in capsys.readouterr().err


def test_sat_engines_with_experiments_rejected(capsys):
    assert main(["--engine", "bmc", "--experiments"]) == 2
    assert "E12" in capsys.readouterr().err
    assert main(["--engine", "ic3", "--experiments"]) == 2
    assert "E13" in capsys.readouterr().err


def test_trace_flag_writes_perfetto_document_with_nested_spans(tmp_path):
    import json

    trace_file = tmp_path / "trace.json"
    exit_code = main(
        [
            "--engine",
            "ic3",
            "--system",
            "mutex",
            "--size",
            "3",
            "--trace",
            str(trace_file),
        ]
    )
    assert exit_code == 0
    document = json.loads(trace_file.read_text())
    assert document["displayTimeUnit"] == "ms"
    events = document["traceEvents"]
    names = {e["name"] for e in events}
    # The acceptance shape: compile/encode/frame/generalize spans all show.
    for expected in (
        "build.encode",
        "ic3.compile",
        "ic3.run",
        "ic3.frame",
        "ic3.generalize",
        "sat.solve",
        "mc.check",
    ):
        assert expected in names, expected
    for e in events:
        assert e["ph"] in ("X", "i", "M")
        if e["ph"] != "M":
            assert e["ts"] >= 0
    # Nesting: some ic3.frame span lies inside the ic3.run span's interval.
    [run] = [e for e in events if e["name"] == "ic3.run"]
    frames = [e for e in events if e["name"] == "ic3.frame"]
    assert frames
    assert all(
        run["ts"] <= f["ts"] and f["ts"] + f["dur"] <= run["ts"] + run["dur"]
        for f in frames
    )
    # Tracing was torn down with the run.
    from repro.obs.trace import is_enabled

    assert not is_enabled()


def test_metrics_flag_writes_jsonl_registry_dump(tmp_path):
    import json

    metrics_file = tmp_path / "metrics.jsonl"
    exit_code = main(
        ["--engine", "bdd", "--ring-size", "3", "--metrics", str(metrics_file)]
    )
    assert exit_code == 0
    rows = [json.loads(line) for line in metrics_file.read_text().splitlines()]
    assert rows
    for row in rows:
        assert set(row) >= {"kind", "name", "labels", "value", "engine", "system", "size"}
        assert row["engine"] == "bdd"
        assert row["system"] == "ring"
        assert row["size"] == 3
    names = {row["name"] for row in rows}
    assert "mc.checks" in names
    assert "bdd.live_nodes" in names
    assert "mc.fixpoint.rounds" in names


def test_progress_flag_prints_heartbeats_for_experiments(capsys):
    exit_code = main(["--experiments", "--quick", "--progress"])
    captured = capsys.readouterr()
    assert exit_code == 0
    progress_lines = [
        line for line in captured.err.splitlines() if line.startswith("[progress]")
    ]
    per_experiment = [
        line for line in progress_lines if line.startswith("[progress] experiments ")
    ]
    assert len(per_experiment) == 13  # one forced heartbeat per experiment
    assert any("experiment=E13_ic3" in line for line in per_experiment)
    # The engines' own outer loops heartbeat through the same reporter.
    assert len(progress_lines) >= 13
    from repro.obs.progress import get_reporter

    assert get_reporter() is None  # torn down with the run


def test_progress_with_profile_keeps_stderr_pure_json(capsys):
    import json

    exit_code = main(
        ["--engine", "bdd", "--ring-size", "3", "--progress", "--profile"]
    )
    captured = capsys.readouterr()
    assert exit_code == 0
    payload = json.loads(captured.err)  # heartbeats went to stdout instead
    assert payload["schema"] == "repro.profile/v2"
    assert payload["metrics"]


def test_profile_metrics_snapshot_matches_engine(capsys):
    import json

    exit_code = main(["--engine", "bmc", "--ring-size", "4", "--profile"])
    captured = capsys.readouterr()
    assert exit_code == 0
    payload = json.loads(captured.err)
    assert payload["mode"] == "check"
    metrics = payload["metrics"]
    assert metrics["mc.checks{engine=bmc}"] >= 1
    assert any(key.startswith("sat.") for key in metrics)


# -- the runtime surface: portfolio, budgets, --buggy, Ctrl-C -------------


def test_portfolio_mutex_check(capsys, monkeypatch):
    monkeypatch.delenv("REPRO_CHAOS", raising=False)
    exit_code = main(["--engine", "portfolio", "--system", "mutex", "--size", "2"])
    out = capsys.readouterr().out
    assert exit_code == 0
    assert "mutex(2) via engine=portfolio" in out
    assert "parallel portfolio racing" in out
    assert "workers     : 4" in out
    assert "won by" in out
    assert "all properties and invariants hold" in out


def test_portfolio_profile_embeds_per_engine_outcomes(capsys, monkeypatch):
    import json

    monkeypatch.delenv("REPRO_CHAOS", raising=False)
    exit_code = main(
        ["--engine", "portfolio", "--system", "mutex", "--size", "2", "--profile"]
    )
    captured = capsys.readouterr()
    assert exit_code == 0
    payload = json.loads(captured.err)
    assert payload["engine"] == "portfolio"
    fates = payload["portfolio"]
    assert set(fates) <= {"bitset", "bdd", "bmc", "ic3"}
    assert any(fate == "ok" for fate in fates.values())
    assert payload["metrics"]["portfolio.races"] >= 1


def test_portfolio_metrics_include_worker_labelled_engine_rows(tmp_path, monkeypatch):
    import json

    monkeypatch.delenv("REPRO_CHAOS", raising=False)
    metrics_file = tmp_path / "race.jsonl"
    exit_code = main(
        [
            "--engine",
            "portfolio",
            "--system",
            "mutex",
            "--size",
            "3",
            "--metrics",
            str(metrics_file),
        ]
    )
    assert exit_code == 0
    rows = [json.loads(line) for line in metrics_file.read_text().splitlines()]
    worker_rows = [row for row in rows if "worker" in row["labels"]]
    assert worker_rows, "no worker-labelled rows merged from the racing engines"
    by_worker = {}
    for row in worker_rows:
        by_worker.setdefault(row["labels"]["worker"], set()).add(row["name"])
    # Several racing engines (winner *and* cancelled losers) merged their
    # registries home under their own label.
    assert len(by_worker) >= 2, sorted(by_worker)
    merged_names = set().union(*by_worker.values())
    assert any(name.startswith("sat.") for name in merged_names), merged_names
    assert any(name.startswith("bdd.") for name in merged_names), merged_names
    # The collector's own bookkeeping rode along.
    assert any(row["name"] == "obs.collect.series" for row in worker_rows)


def test_portfolio_trace_spans_processes_and_repro_obs_reads_it(
    tmp_path, monkeypatch, capsys
):
    import json

    monkeypatch.delenv("REPRO_CHAOS", raising=False)
    trace_file = tmp_path / "race.json"
    exit_code = main(
        [
            "--engine",
            "portfolio",
            "--system",
            "mutex",
            "--size",
            "3",
            "--trace",
            str(trace_file),
        ]
    )
    assert exit_code == 0
    document = json.loads(trace_file.read_text())
    events = document["traceEvents"]
    [race] = [e for e in events if e["ph"] == "X" and e["name"] == "portfolio.race"]
    race_id = race["args"]["span_id"]
    # Worker spans from at least two distinct processes were re-parented
    # under the race span, on their own Perfetto lanes.
    reparented_pids = {
        e["pid"]
        for e in events
        if e["ph"] == "X"
        and e["args"].get("parent_id") == race_id
        and e["args"].get("worker")
        and e["pid"] != race["pid"]
    }
    assert len(reparented_pids) >= 2, reparented_pids
    lanes = {
        e["args"]["name"]
        for e in events
        if e["ph"] == "M" and e["name"] == "process_name"
    }
    assert "coordinator" in lanes
    assert sum(1 for lane in lanes if lane.startswith("worker:")) >= 2, lanes
    capsys.readouterr()  # drop the portfolio run's own output
    from repro.obs.analyze import main as obs_main

    assert obs_main(["report", str(trace_file), "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["critical_path"], "empty critical path"
    [autopsy] = payload["portfolio"]
    assert autopsy["winner"]
    assert len(autopsy["engines"]) >= 2


def test_buggy_flag_refutes_the_seeded_bug(capsys):
    exit_code = main(["--system", "mutex", "--size", "3", "--buggy"])
    out = capsys.readouterr().out
    assert exit_code == 1
    assert "mutex(3) (buggy)" in out
    assert "False" in out


def test_timeout_budget_reports_exhaustion_without_failing(capsys):
    # A deadline too small for any fixpoint round: the checks report
    # BUDGET EXHAUSTED per property, and the run still exits 0 — like
    # INCONCLUSIVE, exhaustion is an honest "not decided".
    exit_code = main(["--engine", "bdd", "--ring-size", "3", "--timeout", "1e-6"])
    out = capsys.readouterr().out
    assert exit_code == 0
    assert "BUDGET EXHAUSTED (deadline)" in out


@pytest.mark.parametrize(
    "argv, fragment",
    [
        (["--workers", "2"], "--workers"),  # default engine is bitset
        (["--engine", "portfolio", "--workers", "0"], "--workers"),
        (["--timeout", "0"], "--timeout"),
        (["--memory-limit", "0"], "--memory-limit"),
        (["--engine", "portfolio", "--fairness"], "fairness"),
        (["--experiments", "--engine", "portfolio"], "E12/E13"),
        (["--experiments", "--buggy"], "--buggy"),
        (["--experiments", "--timeout", "30"], "--timeout"),
    ],
)
def test_runtime_flag_misuse_exits_2(argv, fragment, capsys):
    assert main(argv) == 2
    assert fragment in capsys.readouterr().err


def test_keyboard_interrupt_exits_130_and_flushes_artifacts(
    capsys, monkeypatch, tmp_path
):
    import repro.cli as cli_module

    def _interrupt(*args, **kwargs):
        raise KeyboardInterrupt

    monkeypatch.setattr(cli_module, "_run_check", _interrupt)
    metrics_path = tmp_path / "partial.jsonl"
    exit_code = main(["--ring-size", "2", "--metrics", str(metrics_path)])
    captured = capsys.readouterr()
    assert exit_code == 130
    assert "interrupted: stopped after partial results" in captured.err
    # The artifact flush still ran on the way out (nothing was recorded
    # before the interrupt, so the dump is empty but present).
    assert metrics_path.is_file()
