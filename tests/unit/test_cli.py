"""Unit tests for the ``python -m repro`` command-line interface."""

import subprocess
import sys

import pytest

from repro.cli import build_parser, main


def test_parser_defaults():
    args = build_parser().parse_args([])
    assert args.engine == "bitset"
    assert args.ring_size == 4
    assert not args.experiments
    assert not args.fairness


def test_parser_rejects_unknown_engine():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["--engine", "zdd"])


@pytest.mark.parametrize("engine", ["naive", "bitset", "bdd"])
def test_ring_check_all_engines(engine, capsys):
    exit_code = main(["--engine", engine, "--ring-size", "3"])
    out = capsys.readouterr().out
    assert exit_code == 0
    assert "M_3 via engine=%s" % engine in out
    assert "states      : 24" in out
    assert "transitions : 57" in out
    assert "property eventual_entry" in out
    assert "invariant one_token" in out
    assert "all Section 5 properties and invariants hold" in out


def test_bdd_engine_reports_direct_encoding(capsys):
    main(["--engine", "bdd", "--ring-size", "2"])
    out = capsys.readouterr().out
    assert "direct symbolic encoding" in out


def test_explicit_engines_report_explicit_graph(capsys):
    main(["--engine", "bitset", "--ring-size", "2"])
    out = capsys.readouterr().out
    assert "explicit state graph" in out


@pytest.mark.parametrize("engine", ["naive", "bitset", "bdd"])
def test_fairness_flag_checks_fair_liveness(engine, capsys):
    exit_code = main(["--engine", engine, "--ring-size", "3", "--fairness"])
    out = capsys.readouterr().out
    assert exit_code == 0
    assert "fairness    : 3 conditions" in out
    assert "fair liveness eventual_token       True" in out
    assert "all Section 5 properties and invariants hold" in out


def test_without_fairness_no_liveness_family(capsys):
    main(["--engine", "bitset", "--ring-size", "3"])
    out = capsys.readouterr().out
    assert "fair liveness" not in out
    assert "fairness    :" not in out


def test_invalid_ring_size_exits_2(capsys):
    assert main(["--ring-size", "0"]) == 2
    assert "--ring-size" in capsys.readouterr().err


def test_fairness_with_experiments_rejected(capsys):
    assert main(["--experiments", "--fairness"]) == 2
    assert "--fairness" in capsys.readouterr().err


def test_python_dash_m_entry_point():
    completed = subprocess.run(
        [sys.executable, "-m", "repro", "--engine", "bdd", "--ring-size", "2"],
        capture_output=True,
        text=True,
    )
    assert completed.returncode == 0, completed.stderr
    assert "M_2 via engine=bdd" in completed.stdout


def test_profile_emits_json_with_phases_and_bdd_stats(capsys):
    import json

    exit_code = main(["--engine", "bdd", "--ring-size", "3", "--profile"])
    captured = capsys.readouterr()
    assert exit_code == 0
    payload = json.loads(captured.err)
    assert payload["engine"] == "bdd"
    assert payload["ring_size"] == 3
    phase_names = [phase["name"] for phase in payload["phases"]]
    assert phase_names[0] == "build"
    assert any(name.startswith("check property ") for name in phase_names)
    assert all(phase["seconds"] >= 0 for phase in payload["phases"])
    bdd = payload["bdd"]
    assert bdd["peak_live_nodes"] >= bdd["live_nodes"] > 0
    assert set(bdd["caches"]) == {"ite", "exists", "relprod", "rename", "restrict"}


def test_profile_on_explicit_engine_has_no_bdd_section(capsys):
    import json

    exit_code = main(["--engine", "bitset", "--ring-size", "3", "--profile"])
    captured = capsys.readouterr()
    assert exit_code == 0
    payload = json.loads(captured.err)
    assert payload["engine"] == "bitset"
    assert "bdd" not in payload
    assert payload["total_seconds"] >= 0


def test_profile_with_experiments_rejected(capsys):
    assert main(["--experiments", "--profile"]) == 2
    assert "--profile" in capsys.readouterr().err


def test_bmc_ring_check(capsys):
    exit_code = main(["--engine", "bmc", "--ring-size", "6", "--bound", "5"])
    out = capsys.readouterr().out
    assert exit_code == 0
    assert "M_6 via engine=bmc" in out
    assert "state bits  : 12" in out
    assert "proved by 1-induction" in out
    assert "skipped (outside the BMC invariant fragment)" in out
    assert "checked Section 5 properties and invariants hold" in out


def test_bmc_profile_reports_sat_statistics(capsys):
    import json

    exit_code = main(["--engine", "bmc", "--ring-size", "5", "--bound", "5", "--profile"])
    captured = capsys.readouterr()
    assert exit_code == 0
    payload = json.loads(captured.err)
    assert payload["engine"] == "bmc"
    assert payload["bound"] == 5
    sat = payload["sat"]
    assert sat["solve_calls"] > 0
    assert set(sat) >= {"conflicts", "decisions", "propagations", "learned_clauses"}
    # The BDD manager that owns the unrolled encoding is reported alongside.
    assert payload["bdd"]["live_nodes"] > 0


def test_bound_requires_bmc_engine(capsys):
    assert main(["--engine", "bitset", "--bound", "5"]) == 2
    assert "--bound" in capsys.readouterr().err
    assert main(["--engine", "bmc", "--bound", "-1"]) == 2
    assert "--bound" in capsys.readouterr().err


def test_bmc_with_fairness_rejected(capsys):
    assert main(["--engine", "bmc", "--fairness"]) == 2
    assert "fairness" in capsys.readouterr().err


def test_bmc_with_experiments_rejected(capsys):
    assert main(["--engine", "bmc", "--experiments"]) == 2
    assert "E12" in capsys.readouterr().err
