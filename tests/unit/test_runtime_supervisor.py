"""Unit tests for the supervised worker pool.

Every task here pins ``chaos=ChaosConfig()`` (explicitly disabled) so the
CI chaos lane's ambient ``REPRO_CHAOS`` cannot perturb the outcomes; the
one garbling test arms its own config.  Worker functions are module-level
(pickled by reference under the fork start method).
"""

import multiprocessing
import os
import time

import pytest

from repro.errors import (
    BudgetExceededError,
    FragmentError,
    InconclusiveError,
    ModelCheckingError,
)
from repro.runtime import supervisor as supervisor_module
from repro.runtime.chaos import ChaosConfig
from repro.runtime.limits import ResourceBudget, checkpoint
from repro.runtime.supervisor import (
    RESTARTABLE_STATUSES,
    Supervisor,
    WorkerTask,
    shutdown_all,
)

#: Forces chaos off inside workers even when REPRO_CHAOS is exported.
_NO_CHAOS = ChaosConfig()


def _ok(value):
    return {"value": value}


def _raise_fragment():
    raise FragmentError("outside every fragment")


def _raise_budget():
    raise BudgetExceededError(
        "deadline blown", resource="deadline", limit=1.0, observed=2.0, site="test.site"
    )


def _raise_inconclusive():
    raise InconclusiveError("bound exhausted", depth_reached=3, conflicts_spent=17)


def _raise_generic():
    raise ModelCheckingError("engine bug, but a typed one")


def _crash():
    os._exit(17)


def _sleep_forever():
    time.sleep(600)


def _crash_until_sentinel(sentinel):
    if not os.path.exists(sentinel):
        with open(sentinel, "w"):
            pass
        os._exit(1)
    return "recovered"


def _spin_until_cancelled():
    while True:
        checkpoint("test.spin")
        time.sleep(0.005)


def _task(fn, *args, **kwargs):
    task_id = kwargs.pop("id", "t")
    return WorkerTask(id=task_id, fn=fn, args=args, kwargs=kwargs, chaos=_NO_CHAOS)


def _assert_no_leak(sup):
    assert sup.live_pids() == []
    assert not multiprocessing.active_children()


def test_successful_task_delivers_its_result():
    sup = Supervisor(hang_timeout=10.0)
    outcomes = sup.run([_task(_ok, 42)])
    outcome = outcomes["t"]
    assert outcome.ok
    assert outcome.result == {"value": 42}
    assert outcome.attempts == 1
    assert outcome.history == ["ok"]
    assert outcome.describe() == "ok"
    _assert_no_leak(sup)


@pytest.mark.parametrize(
    "fn, status, error_kind",
    [
        (_raise_fragment, "fragment", "FragmentError"),
        (_raise_budget, "budget", "BudgetExceededError"),
        (_raise_inconclusive, "inconclusive", "InconclusiveError"),
        (_raise_generic, "error", "ModelCheckingError"),
    ],
)
def test_typed_failures_are_final_not_restarted(fn, status, error_kind):
    sup = Supervisor(hang_timeout=10.0, max_restarts=2)
    outcome = sup.run([_task(fn)])["t"]
    assert outcome.status == status
    assert outcome.error_kind == error_kind
    assert outcome.attempts == 1, "a deterministic failure must not be retried"
    assert status not in RESTARTABLE_STATUSES
    _assert_no_leak(sup)


def test_typed_failure_fields_survive_the_pipe():
    sup = Supervisor(hang_timeout=10.0)
    budget_outcome = sup.run([_task(_raise_budget)])["t"]
    assert budget_outcome.fields["resource"] == "deadline"
    assert budget_outcome.fields["site"] == "test.site"
    sup2 = Supervisor(hang_timeout=10.0)
    inconclusive_outcome = sup2.run([_task(_raise_inconclusive, id="u")])["u"]
    assert inconclusive_outcome.fields == {"depth_reached": 3, "conflicts_spent": 17}


def test_crash_is_detected_restarted_and_capped():
    sup = Supervisor(hang_timeout=10.0, max_restarts=1, backoff_base=0.01)
    outcome = sup.run([_task(_crash)])["t"]
    assert outcome.status == "crashed"
    assert outcome.exitcode == 17
    assert outcome.attempts == 2  # first attempt + one restart
    assert outcome.history == ["crashed", "crashed"]
    assert "crashed" in outcome.describe() and "2 attempts" in outcome.describe()
    _assert_no_leak(sup)


def test_restart_recovers_a_crash_once_task(tmp_path):
    sentinel = str(tmp_path / "crashed-once")
    sup = Supervisor(hang_timeout=10.0, max_restarts=2, backoff_base=0.01)
    outcome = sup.run(
        [WorkerTask(id="t", fn=_crash_until_sentinel, args=(sentinel,), chaos=_NO_CHAOS)]
    )["t"]
    assert outcome.status == "ok"
    assert outcome.result == "recovered"
    assert outcome.attempts == 2
    assert outcome.history == ["crashed", "ok"]
    _assert_no_leak(sup)


def test_silent_worker_is_declared_hung():
    sup = Supervisor(hang_timeout=0.4, max_restarts=0)
    outcome = sup.run([_task(_sleep_forever)])["t"]
    assert outcome.status == "hung"
    assert outcome.history == ["hung"]
    assert "heartbeats stopped" in outcome.describe()
    _assert_no_leak(sup)


def test_garbled_payload_is_detected_and_discarded():
    # Rate 1.0 garbling: the digest mismatch must be caught, the corrupted
    # result never deserialised or accepted.
    sup = Supervisor(hang_timeout=10.0, max_restarts=0)
    task = WorkerTask(
        id="t", fn=_ok, args=(1,), chaos=ChaosConfig({"garble": 1.0}, seed=5)
    )
    outcome = sup.run([task])["t"]
    assert outcome.status == "garbled"
    assert outcome.result is None
    assert "digest mismatch" in outcome.describe()
    _assert_no_leak(sup)


def test_stop_when_cancels_the_stragglers():
    tasks = [
        _task(_ok, "fast", id="fast"),
        WorkerTask(
            id="slow",
            fn=_spin_until_cancelled,
            budget=ResourceBudget(),  # unlimited: cancel-token-only budget
            chaos=_NO_CHAOS,
        ),
    ]
    sup = Supervisor(hang_timeout=10.0, grace=1.0)
    outcomes = sup.run(
        tasks, stop_when=lambda all_outcomes: any(o.ok for o in all_outcomes.values())
    )
    assert outcomes["fast"].ok
    assert outcomes["slow"].status == "cancelled"
    _assert_no_leak(sup)


def test_duplicate_task_ids_are_rejected():
    with Supervisor() as sup:
        with pytest.raises(ValueError):
            sup.run([_task(_ok, 1), _task(_ok, 2)])
    _assert_no_leak(sup)


def test_context_manager_tears_down_on_exit():
    with Supervisor() as sup:
        pass
    assert sup.live_pids() == []
    sup.shutdown()  # idempotent


def test_shutdown_all_sweeps_every_live_supervisor():
    sup = Supervisor()
    assert shutdown_all() >= 1
    assert sup.live_pids() == []
    # Everything swept: the registry is empty until a new supervisor appears.
    assert supervisor_module.shutdown_all() == 0
