"""Unit tests for the CDCL solver: propagation, learning, assumptions, fuzz."""

import random

import pytest

from repro.sat.cnf import CNF, SatError, evaluate_clauses, naive_satisfiable
from repro.sat.fuzz import random_3cnf, run_fuzz
from repro.sat.solver import Solver, luby


def _solver_for(cnf: CNF) -> Solver:
    solver = Solver()
    for _ in range(cnf.num_vars):
        solver.new_var()
    for clause in cnf.clauses:
        solver.add_clause(clause)
    return solver


def test_luby_sequence():
    assert [luby(i) for i in range(15)] == [1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8]
    assert luby(6, base=100) == 400


def test_empty_formula_is_satisfiable():
    assert Solver().solve()


def test_unit_propagation_chain():
    """A 100-literal implication chain must resolve by propagation alone."""
    solver = Solver()
    variables = [solver.new_var() for _ in range(100)]
    solver.add_clause([variables[0]])
    for source, target in zip(variables, variables[1:]):
        solver.add_clause([-source, target])
    assert solver.solve()
    assert all(solver.model_value(var) for var in variables)
    assert solver.stats.decisions == 0  # the chain never needs a guess


def test_conflicting_units_unsat():
    solver = Solver()
    v = solver.new_var()
    solver.add_clause([v])
    assert not solver.add_clause([-v]) or not solver.solve()
    assert not solver.solve()


def test_pigeonhole_three_pigeons_two_holes_unsat():
    solver = Solver()
    pigeon = {(i, j): solver.new_var() for i in range(3) for j in range(2)}
    for i in range(3):
        solver.add_clause([pigeon[(i, 0)], pigeon[(i, 1)]])
    for j in range(2):
        for first in range(3):
            for second in range(first + 1, 3):
                solver.add_clause([-pigeon[(first, j)], -pigeon[(second, j)]])
    assert not solver.solve()
    assert solver.stats.conflicts > 0


def test_assumption_incrementality():
    """One solver, contradictory assumption sets, clauses added in between."""
    solver = Solver()
    a, b, c = (solver.new_var() for _ in range(3))
    solver.add_clause([a, b])
    assert solver.solve(assumptions=[-a, -b]) is False
    assert solver.solve(assumptions=[-a])  # still satisfiable: b carries
    assert solver.model_value(b)
    solver.add_clause([-b, c])  # incremental clause addition after solving
    assert solver.solve(assumptions=[-a])
    assert solver.model_value(c)
    assert solver.solve(assumptions=[a, -b, -c])
    assert not solver.solve(assumptions=[-a, -c])
    # The database itself never became unsatisfiable.
    assert solver.solve()


def test_assumptions_do_not_persist():
    solver = Solver()
    v = solver.new_var()
    assert solver.solve(assumptions=[-v])
    assert solver.solve(assumptions=[v])


def test_model_validity_on_random_instances():
    rng = random.Random(42)
    for _ in range(30):
        cnf = random_3cnf(rng, rng.randint(4, 10), rng.randint(8, 40))
        solver = _solver_for(cnf)
        if solver.solve():
            assert evaluate_clauses(cnf.clauses, solver.model())
        else:
            assert not naive_satisfiable(cnf)


def test_tautological_and_duplicate_clauses():
    solver = Solver()
    a, b = solver.new_var(), solver.new_var()
    solver.add_clause([a, -a, b])  # tautology: silently satisfied
    solver.add_clause([a, a, b])  # duplicate literal collapsed
    assert solver.solve(assumptions=[-a])
    assert solver.model_value(b)


def test_zero_literal_rejected():
    with pytest.raises(SatError):
        Solver().add_clause([0])
    with pytest.raises(SatError):
        Solver().solve(assumptions=[0])


def test_model_unavailable_before_sat():
    solver = Solver()
    v = solver.new_var()
    with pytest.raises(SatError):
        solver.model_value(v)


def test_stale_model_cleared_on_unsat():
    """An UNSAT answer must invalidate the model of an earlier SAT call."""
    solver = Solver()
    a, b = solver.new_var(), solver.new_var()
    solver.add_clause([a, b])
    assert solver.solve()
    assert not solver.solve(assumptions=[-a, -b])
    with pytest.raises(SatError):
        solver.model()
    with pytest.raises(SatError):
        solver.model_value(a)


def test_stats_accumulate_across_calls():
    solver = Solver()
    variables = [solver.new_var() for _ in range(20)]
    rng = random.Random(7)
    for _ in range(80):
        clause = [var if rng.random() < 0.5 else -var for var in rng.sample(variables, 3)]
        solver.add_clause(clause)
    first = solver.solve()
    calls_after_first = solver.stats.solve_calls
    solver.solve(assumptions=[variables[0]])
    assert solver.stats.solve_calls == calls_after_first + 1
    assert solver.stats.propagations > 0
    assert isinstance(first, bool)
    payload = solver.stats.as_dict()
    assert set(payload) >= {"conflicts", "decisions", "propagations", "learned_clauses"}


def test_learnt_clause_database_reduction():
    """Force enough conflicts that the learnt DB is reduced at least once."""
    solver = Solver()
    solver._max_learnts = 10.0  # shrink the budget so reduction triggers fast
    variables = [solver.new_var() for _ in range(40)]
    rng = random.Random(3)
    for _ in range(170):
        clause = [var if rng.random() < 0.5 else -var for var in rng.sample(variables, 3)]
        solver.add_clause(clause)
    solver.solve()
    assert solver.stats.learned_clauses > 0
    assert solver.stats.deleted_clauses > 0


def test_gate_interface_on_solver():
    """The solver doubles as a Tseitin sink (ClauseSink mixin)."""
    solver = Solver()
    a, b = solver.new_var(), solver.new_var()
    both = solver.gate_and([a, b])
    solver.add_clause([both])
    assert solver.solve()
    assert solver.model_value(a) and solver.model_value(b)


def test_fuzz_harness_clean():
    assert run_fuzz(count=25, max_vars=10, seed=123) == 0


def test_unsat_core_names_the_assumptions_used():
    solver = Solver()
    x, y, z = (solver.new_var() for _ in range(3))
    solver.add_clause([x])
    solver.add_clause([-x, y])
    assert not solver.solve(assumptions=[-y, z])
    core = solver.unsat_core()
    assert core <= {-y, z}
    assert -y in core  # z is irrelevant to the conflict
    # The core is sufficient: the database plus the core alone is UNSAT.
    replay = Solver()
    for _ in range(3):
        replay.new_var()
    replay.add_clause([x])
    replay.add_clause([-x, y])
    assert not replay.solve(assumptions=sorted(core))


def test_unsat_core_empty_when_database_alone_is_unsat():
    solver = Solver()
    v = solver.new_var()
    w = solver.new_var()
    solver.add_clause([v])
    solver.add_clause([-v])
    assert not solver.solve(assumptions=[w])
    assert solver.unsat_core() == frozenset()


def test_unsat_core_unavailable_after_sat():
    solver = Solver()
    v = solver.new_var()
    solver.add_clause([v])
    assert solver.solve()
    with pytest.raises(SatError):
        solver.unsat_core()


def test_inprocess_preserves_satisfiability():
    """Explicit inprocessing must never change any verdict (differential)."""
    rng = random.Random(11)
    for _ in range(30):
        num_vars = rng.randint(4, 10)
        cnf = random_3cnf(rng, num_vars, int(4.0 * num_vars))
        plain, simplified = _solver_for(cnf), _solver_for(cnf)
        assert simplified.inprocess() or not naive_satisfiable(cnf)
        verdict = simplified.solve()
        assert verdict == plain.solve() == naive_satisfiable(cnf)
        if verdict:
            assert evaluate_clauses(cnf.clauses, simplified.model())


def test_inprocess_subsumes_and_strengthens():
    solver = Solver()
    a, b, c = (solver.new_var() for _ in range(3))
    solver.add_clause([a, b])
    solver.add_clause([a, b, c])      # subsumed by [a, b]
    solver.add_clause([-a, b, c])     # self-subsumption with [a, b] on a
    assert solver.inprocess()
    assert solver.stats.subsumed_clauses >= 1
    assert solver.stats.inprocessings == 1
    assert solver.solve()


def test_inprocess_keeps_incremental_solving_correct():
    """Assumptions asked after an inprocess() round still see all clauses."""
    solver = Solver()
    x, y = solver.new_var(), solver.new_var()
    solver.add_clause([x, y])
    solver.add_clause([x, -y])
    assert solver.inprocess()
    assert not solver.solve(assumptions=[-x])
    assert solver.unsat_core() == frozenset({-x})
    assert solver.solve(assumptions=[x])


def test_glue_reduction_keeps_binary_clauses_sound():
    """Aggressive DB reduction with glue-aware retention never loses answers."""
    rng = random.Random(5)
    cnf = random_3cnf(rng, 30, 126)
    solver = _solver_for(cnf)
    solver._max_learnts = 5.0  # force constant reduction pressure
    verdict = solver.solve()
    if verdict:
        assert evaluate_clauses(cnf.clauses, solver.model())
    # Re-query under assumptions: deleted learnts must not have taken
    # original clauses with them.
    for var in range(1, 6):
        if solver.solve(assumptions=[var]):
            assert solver.model_value(var)
        if solver.solve(assumptions=[-var]):
            assert not solver.model_value(var)
    assert solver.stats.deleted_clauses > 0 or solver.stats.conflicts < 10
