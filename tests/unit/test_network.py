"""Unit tests for process templates, compositions, free products, and topologies."""

import pytest

from repro.errors import CompositionError
from repro.kripke.structure import IndexedProp
from repro.network.composition import GlobalRule, SharedVariableComposition
from repro.network.family import ProcessFamily
from repro.network.free_product import free_product
from repro.network.process import LocalTransition, ProcessTemplate
from repro.network.topology import (
    complete_topology,
    left_neighbor,
    line_topology,
    right_neighbor,
    ring_distance_left,
    ring_topology,
    star_topology,
)


def simple_template():
    return ProcessTemplate(
        name="worker",
        states=["idle", "busy"],
        initial_state="idle",
        labels={"idle": {"i"}, "busy": {"b"}},
        transitions=[
            LocalTransition("idle", "busy", action="start"),
            LocalTransition("busy", "idle", action="stop"),
        ],
    )


# ---------------------------------------------------------------------------
# ProcessTemplate
# ---------------------------------------------------------------------------


def test_template_accessors():
    template = simple_template()
    assert template.name == "worker"
    assert template.initial_state == "idle"
    assert template.label("busy") == frozenset({"b"})
    assert len(template.transitions) == 2
    assert [t.target for t in template.transitions_from("idle")] == ["busy"]


def test_template_validation():
    with pytest.raises(CompositionError):
        ProcessTemplate("x", [], "a", {}, [])
    with pytest.raises(CompositionError):
        ProcessTemplate("x", ["a"], "b", {}, [])
    with pytest.raises(CompositionError):
        ProcessTemplate("x", ["a"], "a", {"b": {"p"}}, [])
    with pytest.raises(CompositionError):
        ProcessTemplate("x", ["a"], "a", {}, [LocalTransition("a", "b")])


def test_template_to_kripke_adds_self_loops_for_totality():
    template = ProcessTemplate(
        name="oneway",
        states=["a", "b"],
        initial_state="a",
        labels={"a": {"p"}},
        transitions=[LocalTransition("a", "b")],
    )
    structure = template.to_kripke()
    assert structure.is_total()
    assert structure.successors("b") == frozenset({"b"})
    loose = template.to_kripke(require_total=False)
    assert not loose.is_total()


# ---------------------------------------------------------------------------
# SharedVariableComposition
# ---------------------------------------------------------------------------


def test_interleaving_without_shared_state():
    composition = SharedVariableComposition(simple_template(), size=2)
    structure = composition.build()
    assert structure.num_states == 4
    assert structure.is_total()
    assert structure.index_values == frozenset({1, 2})
    initial_label = structure.label(structure.initial_state)
    assert IndexedProp("i", 1) in initial_label and IndexedProp("i", 2) in initial_label


def test_guarded_transitions_respect_the_shared_variable():
    def only_when_token(shared, index, _locals):
        return shared == index

    def pass_token(shared, index, _locals):
        return index % 2 + 1

    template = ProcessTemplate(
        name="taker",
        states=["idle", "busy"],
        initial_state="idle",
        labels={"busy": {"b"}},
        transitions=[
            LocalTransition("idle", "busy", guard=only_when_token),
            LocalTransition("busy", "idle", update=pass_token),
        ],
    )
    composition = SharedVariableComposition(template, size=2, shared_initial=1)
    structure = composition.build()
    # Only the token holder can become busy, so no state has both busy.
    for state in structure.states:
        label = structure.label(state)
        assert not (IndexedProp("b", 1) in label and IndexedProp("b", 2) in label)


def test_shared_labeler_adds_labels():
    composition = SharedVariableComposition(
        simple_template(),
        size=2,
        shared_initial=1,
        shared_labeler=lambda shared: {IndexedProp("t", shared)},
    )
    structure = composition.build()
    assert all(IndexedProp("t", 1) in structure.label(state) for state in structure.states)


def test_global_rules_move_several_processes_at_once():
    def all_busy(_shared, locals_tuple):
        return all(local == "busy" for local in locals_tuple)

    def reset(shared, locals_tuple):
        return shared, tuple("idle" for _ in locals_tuple)

    template = ProcessTemplate(
        name="oneway",
        states=["idle", "busy"],
        initial_state="idle",
        labels={"busy": {"b"}},
        transitions=[LocalTransition("idle", "busy")],
    )
    composition = SharedVariableComposition(
        template, size=3, global_rules=[GlobalRule("reset", all_busy, reset)]
    )
    structure = composition.build()
    assert structure.is_total()
    all_busy_state = (None, ("busy", "busy", "busy"))
    assert structure.successors(all_busy_state) == frozenset({(None, ("idle", "idle", "idle"))})


def test_global_rule_must_preserve_process_count():
    rule = GlobalRule("bad", lambda shared, locals_tuple: True, lambda shared, locals_tuple: (shared, ()))
    composition = SharedVariableComposition(simple_template(), size=2, global_rules=[rule])
    with pytest.raises(CompositionError):
        composition.build()


def test_max_states_bound_is_enforced():
    composition = SharedVariableComposition(simple_template(), size=4)
    with pytest.raises(CompositionError):
        composition.build(max_states=3)


def test_composition_argument_validation():
    with pytest.raises(CompositionError):
        SharedVariableComposition(simple_template())
    with pytest.raises(CompositionError):
        SharedVariableComposition(simple_template(), size=0)
    with pytest.raises(CompositionError):
        SharedVariableComposition(simple_template(), index_values=[1, 1])


def test_on_the_fly_successors_match_built_structure():
    composition = SharedVariableComposition(simple_template(), size=2)
    structure = composition.build()
    for state in structure.states:
        assert frozenset(composition.successors(state)) == structure.successors(state)
        assert composition.label(state) == set(structure.label(state))


# ---------------------------------------------------------------------------
# Free product and family
# ---------------------------------------------------------------------------


def test_free_product_ignores_guards():
    def never(_shared, _index, _locals):
        return False

    template = ProcessTemplate(
        name="guarded",
        states=["a", "b"],
        initial_state="a",
        labels={"a": {"A"}, "b": {"B"}},
        transitions=[LocalTransition("a", "b", guard=never)],
    )
    product = free_product(template, 2)
    # The guard is ignored, so all four combinations are reachable.
    assert product.num_states == 4


def test_free_product_size_and_labels():
    product = free_product(simple_template(), 3)
    assert product.num_states == 8
    assert product.index_values == frozenset({1, 2, 3})


def test_process_family_builds_instances_of_any_size():
    family = ProcessFamily(simple_template(), name="workers")
    small = family.instance(2)
    large = family.instance(3)
    assert small.num_states == 4
    assert large.num_states == 8
    assert family.free_instance(2).num_states == 4
    assert family.template is not None and family.name == "workers"
    assert family.composition(2).size == 2


# ---------------------------------------------------------------------------
# Topologies
# ---------------------------------------------------------------------------


def test_ring_topology_neighbours():
    topology = ring_topology([1, 2, 3, 4])
    assert topology[1] == (4, 2)
    assert topology[3] == (2, 4)


def test_line_and_star_and_complete_topologies():
    line = line_topology([1, 2, 3])
    assert line[1] == (2,) and line[2] == (1, 3) and line[3] == (2,)
    star = star_topology([1, 2, 3])
    assert star[1] == (2, 3) and star[2] == (1,)
    complete = complete_topology([1, 2, 3])
    assert complete[2] == (1, 3)


def test_topology_validation():
    with pytest.raises(CompositionError):
        ring_topology([])
    with pytest.raises(CompositionError):
        ring_topology([1, 1])


def test_ring_arithmetic_helpers():
    assert left_neighbor(1, 4) == 4
    assert left_neighbor(3, 4) == 2
    assert right_neighbor(4, 4) == 1
    assert ring_distance_left(3, 1, 4) == 2
    assert ring_distance_left(1, 3, 4) == 2
    assert ring_distance_left(2, 2, 4) == 0
    with pytest.raises(CompositionError):
        left_neighbor(9, 4)
    with pytest.raises(CompositionError):
        right_neighbor(0, 4)
    with pytest.raises(CompositionError):
        ring_distance_left(0, 1, 4)
