"""Unit tests for the analysis helpers and the error hierarchy."""

from repro import errors
from repro.analysis.explosion import sample_large_ring_correspondence, token_ring_explosion_sweep
from repro.analysis.timing import timed_call


def test_error_hierarchy_is_rooted_at_repro_error():
    leaf_errors = [
        errors.FormulaError,
        errors.ParseError,
        errors.FragmentError,
        errors.RestrictionError,
        errors.StructureError,
        errors.ValidationError,
        errors.ModelCheckingError,
        errors.CorrespondenceError,
        errors.CompositionError,
    ]
    for error_type in leaf_errors:
        assert issubclass(error_type, errors.ReproError)
    assert issubclass(errors.ParseError, errors.FormulaError)
    assert issubclass(errors.ValidationError, errors.StructureError)
    assert issubclass(errors.RestrictionError, errors.FormulaError)


def test_parse_error_carries_position():
    error = errors.ParseError("bad", position=7)
    assert error.position == 7
    assert errors.ParseError("bad").position is None


def test_timed_call_returns_value_and_duration():
    result = timed_call(sum, [1, 2, 3])
    assert result.value == 6
    assert result.seconds >= 0.0


def test_explosion_sweep_reports_growth():
    points = token_ring_explosion_sweep([2, 3])
    assert [point.size for point in points] == [2, 3]
    assert points[0].num_states == 8
    assert points[1].num_states == 24
    assert points[1].num_states > points[0].num_states
    assert all(point.results for point in points)
    assert all(value for point in points for value in point.results.values())


def test_explosion_sweep_accepts_custom_formulas():
    from repro.systems import token_ring

    points = token_ring_explosion_sweep([2], formulas={"one_token": token_ring.invariant_one_token()})
    assert points[0].results == {"one_token": True}


def test_large_ring_spot_check_never_builds_the_graph():
    counters = sample_large_ring_correspondence(50, num_walks=3, walk_length=10, seed=1)
    assert counters["visited"] == 30
    assert counters["paired"] == counters["visited"]
    assert counters["partition_ok"] == counters["visited"]


def test_large_ring_spot_check_is_deterministic_for_a_seed():
    first = sample_large_ring_correspondence(20, num_walks=2, walk_length=8, seed=42)
    second = sample_large_ring_correspondence(20, num_walks=2, walk_length=8, seed=42)
    assert first == second


def test_experiment_drivers_quick_subset():
    from repro.analysis import experiments

    e1 = experiments.run_e1_fig31()
    assert e1["corresponds"] and e1["all_agree"]
    assert e1["degree_exact_match"] == 0 and e1["degree_two_steps"] == 2

    e3 = experiments.run_e3_nexttime(sizes=(2, 3, 4))
    assert e3["holds"] == {2: False, 3: True, 4: False}

    e4 = experiments.run_e4_fig51()
    assert e4["num_states"] == 8 and e4["num_transitions"] == 14

    e5 = experiments.run_e5_invariants(sizes=(2, 3))
    assert e5["all_hold"]

    e9 = experiments.run_e9_conjecture(max_size=3, max_depth=2)
    assert e9["conjecture_holds_on_family"]

    e11 = experiments.run_e11_fairness(sizes=(2, 3), symbolic_sizes=(4,))
    assert e11["unfair_fails_everywhere"]
    assert e11["fair_holds_everywhere"]
    assert e11["engines_agree"]
    assert e11["counterexample_valid"]
