"""Unit tests for the complement-edge ROBDD manager and the BDDFunction wrapper.

Covers the invariants the symbolic engine relies on: canonical complement-edge
form (structural equality is edge-id equality, O(1) negation, regular high
edges), the unified ITE apply cache, quantification and relational products
against brute-force truth tables, order-preserving renaming with canonical
content-derived cache keys, satisfy-counting, mark-and-sweep garbage
collection driven by reference-counted handles, bounded operation caches with
hit/miss/evict statistics, and dynamic reordering (Rudell sifting) with
variable groups and order persistence.
"""

from itertools import product

import pytest

from repro.bdd import BDDFunction, BDDManager
from repro.errors import BDDError

LEVELS = (0, 1, 2)


def brute_force(function, levels=LEVELS):
    """The truth table of a BDDFunction as a frozenset of satisfying tuples."""
    return frozenset(
        values
        for values in product([False, True], repeat=len(levels))
        if function.evaluate(dict(zip(levels, values)))
    )


@pytest.fixture()
def manager():
    return BDDManager()


@pytest.fixture()
def abc(manager):
    return tuple(BDDFunction.variable(manager, level) for level in LEVELS)


# ---------------------------------------------------------------------------
# Canonical form (hash-consing + complement edges)
# ---------------------------------------------------------------------------


def test_same_function_built_differently_is_same_node(manager, abc):
    a, b, c = abc
    de_morgan_left = ~(a | b)
    de_morgan_right = ~a & ~b
    assert de_morgan_left.node == de_morgan_right.node
    assert de_morgan_left == de_morgan_right
    assert (a & b) | (a & c) == a & (b | c)


def test_negation_is_an_edge_flip(manager, abc):
    a, b, _ = abc
    f = (a & b) | (~a & ~b)
    before = len(manager)
    g = ~f
    # O(1): no node may be allocated by a complement.
    assert len(manager) == before
    assert g.node == f.node ^ 1
    assert ~g == f
    assert manager.negate(f.node) == f.node ^ 1


def test_reduction_rules(manager):
    for var in (0, 1, 2):  # _mk is the raw constructor; variables must exist
        manager.var(var)
    # Redundant test: mk(var, t, t) must collapse to t.
    v = manager.var(0)
    assert manager._mk(1, v, v) == v
    # Sharing: building the same triple twice yields the same edge.
    left = manager._mk(2, 0, 1)
    right = manager._mk(2, 0, 1)
    assert left == right
    # Complement normalization: a complemented high edge flips the result.
    assert manager._mk(2, 1, 0) == manager._mk(2, 0, 1) ^ 1


def test_high_edges_are_always_regular(manager, abc):
    a, b, c = abc
    _ = (a & b) | (b ^ c) | (~a & c)
    for var, table in enumerate(manager._subtables):
        for (lo, hi), node in table.items():
            assert hi & 1 == 0, "stored high edge must be regular"
            assert manager._lvl[node] < min(manager._lvl[lo >> 1], manager._lvl[hi >> 1])
        assert len(set(table.values())) == len(table)


def test_terminals_and_literals(manager):
    t = BDDFunction.true(manager)
    f = BDDFunction.false(manager)
    assert t.is_true and f.is_false
    assert (~t) == f and (~f) == t
    v = BDDFunction.variable(manager, 4)
    assert (v | ~v).is_true
    assert (v & ~v).is_false


# ---------------------------------------------------------------------------
# The unified ITE apply cache
# ---------------------------------------------------------------------------


def test_apply_cache_hits_on_repeated_conjunction(manager, abc):
    a, b, c = abc
    f = (a | b) & (b | c)
    before = manager.apply_cache_hits
    g = (a | b) & (b | c)  # same operands: every recursive step must hit
    assert g == f
    assert manager.apply_cache_hits > before


def test_apply_cache_shared_across_expressions(manager, abc):
    a, b, c = abc
    lhs = (a & b) | c
    misses_before = manager.apply_cache_misses
    rhs = (a & b) | c
    assert rhs == lhs
    # The second build re-resolves a & b from the cache without new misses.
    assert manager.apply_cache_misses == misses_before


def test_apply_dispatcher_derived_ops(manager, abc):
    a, b, _ = abc
    assert manager.apply("imp", a.node, b.node) == (~a | b).node
    assert manager.apply("iff", a.node, b.node) == ((a & b) | (~a & ~b)).node
    assert manager.apply("diff", a.node, b.node) == (a & ~b).node
    with pytest.raises(BDDError):
        manager.apply("nand", a.node, b.node)


def test_bounded_cache_evicts_and_counts(manager, abc):
    small = BDDManager(cache_limit=8)
    vs = [BDDFunction.variable(small, i) for i in range(6)]
    f = vs[0]
    for v in vs[1:]:
        f = (f & v) | (~f & ~v)
    stats = {cache.name: cache for cache in small.stats().caches}
    assert stats["ite"].evictions > 0
    assert stats["ite"].size <= 8
    assert stats["ite"].misses > 0


# ---------------------------------------------------------------------------
# ite / restrict
# ---------------------------------------------------------------------------


def test_ite_matches_boolean_definition(manager, abc):
    a, b, c = abc
    assert a.ite(b, c) == (a & b) | (~a & c)
    assert a.ite(BDDFunction.true(manager), BDDFunction.false(manager)) == a


def test_restrict_is_cofactor(manager, abc):
    a, b, c = abc
    f = (a & b) | (~a & c)
    assert f.restrict(0, True) == b
    assert f.restrict(0, False) == c
    assert f.restrict(2, True).restrict(0, False).is_true


# ---------------------------------------------------------------------------
# Quantification and relational product
# ---------------------------------------------------------------------------


def test_exists_equals_or_of_cofactors(manager, abc):
    a, b, c = abc
    f = (a & b) | (b ^ c)
    assert f.exists([1]) == f.restrict(1, False) | f.restrict(1, True)
    assert f.forall([1]) == f.restrict(1, False) & f.restrict(1, True)


def test_exists_against_truth_table(manager, abc):
    a, b, c = abc
    f = (a | b) & (~b | c)
    quantified = f.exists([0, 2])
    for value in (False, True):
        expect = any(
            f.evaluate({0: x, 1: value, 2: z}) for x in (False, True) for z in (False, True)
        )
        assert quantified.evaluate({1: value}) == expect


def test_relprod_equals_unfused_quantified_conjunction(manager, abc):
    a, b, c = abc
    # Check the fused relational product against exists(f & g) for a grid of
    # operand shapes, including ones whose conjunction is constant.
    operands = [a & b, a | ~c, b ^ c, a.ite(b, c), ~a, BDDFunction.true(manager)]
    for f in operands:
        for g in operands:
            for cube in ([0], [1], [0, 1], [0, 1, 2], [2]):
                assert f.relprod(g, cube) == (f & g).exists(cube), (f, g, cube)


def test_rename_shifts_support(manager, abc):
    a, b, c = abc
    f = (a & b) | c
    shifted = f.rename({0: 10, 1: 11, 2: 12})
    assert shifted.support() == frozenset({10, 11, 12})
    assert brute_force(shifted, (10, 11, 12)) == brute_force(f)


def test_rename_rejects_order_violations(manager, abc):
    a, b, _ = abc
    with pytest.raises(BDDError):
        (a & b).rename({0: 5, 1: 3})


def test_rename_rejects_interleaving_with_unmapped_support(manager):
    # {0: 5} is trivially monotone on its own, but moving variable 0 past the
    # *unmapped* support variable 3 would build an unordered diagram.
    f = BDDFunction.variable(manager, 0) & BDDFunction.variable(manager, 3)
    with pytest.raises(BDDError):
        f.rename({0: 5})


def test_rename_cache_key_is_content_derived(manager, abc):
    """Semantically identical mappings share cache entries (PR-4 bugfix).

    The cache key used to be an arbitrary caller-supplied ``tag`` object, so
    two equal mappings with different tags (or two equal dicts) missed each
    other's entries.  The key is now derived from the mapping's sorted
    content; any tag argument is ignored.
    """
    a, b, c = abc
    f = (a & b) | c
    first = manager.rename(f.node, {0: 10, 1: 11, 2: 12}, tag="one tag")
    rename_stats = {cache.name: cache for cache in manager.stats().caches}["rename"]
    misses_before = rename_stats.hits + rename_stats.misses  # snapshot via counters
    hits_before = rename_stats.hits
    # A *different* dict object with different tag but the same content.
    second = manager.rename(f.node, {2: 12, 0: 10, 1: 11}, tag=("another", "tag"))
    assert second == first
    rename_stats = {cache.name: cache for cache in manager.stats().caches}["rename"]
    assert rename_stats.hits > hits_before
    assert rename_stats.hits + rename_stats.misses == misses_before + 1


# ---------------------------------------------------------------------------
# Counting, models, support
# ---------------------------------------------------------------------------


def test_sat_count_weights_free_variables(manager, abc):
    a, b, c = abc
    f = a & b
    assert f.sat_count([0, 1]) == 1
    assert f.sat_count([0, 1, 2]) == 2
    assert f.sat_count([0, 1, 2, 3, 4]) == 8
    assert BDDFunction.true(manager).sat_count(LEVELS) == 8
    assert BDDFunction.false(manager).sat_count(LEVELS) == 0


def test_sat_count_of_complemented_edges(manager, abc):
    a, b, c = abc
    f = (a & b) | (b ^ c)
    assert f.sat_count(LEVELS) + (~f).sat_count(LEVELS) == 8


def test_sat_count_requires_support_coverage(manager, abc):
    a, b, _ = abc
    with pytest.raises(BDDError):
        (a & b).sat_count([0])


def test_models_enumerate_exactly_the_satisfying_assignments(manager, abc):
    a, b, c = abc
    f = (a | b) & ~c
    models = list(f.models(LEVELS))
    assert len(models) == f.sat_count(LEVELS)
    assert len({tuple(sorted(m.items())) for m in models}) == len(models)
    for model in models:
        assert f.evaluate(model)


def test_support_and_size(manager, abc):
    a, _, c = abc
    f = a ^ c
    assert f.support() == frozenset({0, 2})
    assert f.size == manager.node_count(f.node)
    assert BDDFunction.true(manager).support() == frozenset()


def test_cube_builder(manager):
    cube = manager.cube({0: True, 2: False, 4: True})
    assert manager.evaluate(cube, {0: True, 2: False, 4: True})
    assert not manager.evaluate(cube, {0: True, 2: True, 4: True})
    assert manager.sat_count(cube, (0, 1, 2, 3, 4)) == 4


# ---------------------------------------------------------------------------
# Garbage collection and ManagerStats
# ---------------------------------------------------------------------------


def test_collect_reclaims_unreferenced_nodes_and_clears_caches(manager):
    vs = [BDDFunction.variable(manager, i) for i in range(8)]
    keep = (vs[0] & vs[1]) | (vs[2] ^ vs[3])
    keep_table = brute_force(keep, tuple(range(8)))
    # Build a pile of garbage whose handles die immediately.
    for i in range(7):
        _ = (vs[i] | ~vs[i + 1]) & (vs[0] ^ vs[i])
    live_before = len(manager)
    stats_before = manager.stats()
    assert any(cache.size for cache in stats_before.caches)
    freed = manager.collect()
    stats_after = manager.stats()
    assert freed > 0
    assert len(manager) < live_before
    # Caches are cleared automatically on GC.
    assert all(cache.size == 0 for cache in stats_after.caches)
    assert stats_after.gc_runs == stats_before.gc_runs + 1
    assert stats_after.gc_reclaimed >= freed
    # Externally referenced functions survive with identical semantics.
    assert brute_force(keep, tuple(range(8))) == keep_table


def test_handle_lifetime_drives_external_references(manager):
    v = BDDFunction.variable(manager, 0)
    w = BDDFunction.variable(manager, 1)
    f = v & w
    external_with = manager.stats().external_references
    node = f.node
    del f
    assert manager.stats().external_references < external_with
    # The dropped conjunction is garbage now; the literals are still held.
    manager.collect()
    assert manager.evaluate(v.node, {0: True})
    assert node  # silences the linter; the raw id is dead after collect()


def test_stats_snapshot_shape(manager, abc):
    a, b, _ = abc
    _ = a & b
    stats = manager.stats()
    assert stats.live_nodes == len(manager)
    assert stats.peak_live_nodes >= stats.live_nodes
    assert stats.num_vars == 3
    payload = stats.as_dict()
    assert set(payload["caches"]) == {"ite", "exists", "relprod", "rename", "restrict"}
    ite = [cache for cache in stats.caches if cache.name == "ite"][0]
    assert 0.0 <= ite.hit_rate <= 1.0


# ---------------------------------------------------------------------------
# Dynamic reordering
# ---------------------------------------------------------------------------


def _random_functions(manager, num_vars, count, seed):
    import random

    rng = random.Random(seed)
    vs = [BDDFunction.variable(manager, i) for i in range(num_vars)]

    def build(depth):
        if depth == 0:
            return rng.choice(vs)
        op = rng.choice("&|^")
        left, right = build(depth - 1), build(depth - 1)
        return {"&": left & right, "|": left | right, "^": left ^ right}[op]

    return [build(4) for _ in range(count)]


def test_reorder_preserves_semantics_and_edges(manager):
    functions = _random_functions(manager, 8, 10, seed=11)
    tables = [brute_force(f, tuple(range(8))) for f in functions]
    stats_before = manager.stats()
    manager.reorder()
    stats_after = manager.stats()
    assert stats_after.reorder_runs == stats_before.reorder_runs + 1
    assert stats_after.sift_swaps > 0
    # Every handle's edge is still valid and denotes the same function.
    for function, table in zip(functions, tables):
        assert brute_force(function, tuple(range(8))) == table
    # Caches do not survive a reorder.
    assert all(cache.size == 0 for cache in stats_after.caches)


def test_reorder_can_shrink_the_table(manager):
    # A function with a known bad/good order: x0 x2 x4 ... interleaved
    # equality pairs; the identity order (pairs split) is exponentially
    # worse than the paired order, which sifting should approach.
    pairs = 5
    f = BDDFunction.true(manager)
    for k in range(pairs):
        left = BDDFunction.variable(manager, k)
        right = BDDFunction.variable(manager, pairs + k)
        f = f & (left.iff(right))
    before = f.size
    manager.reorder()
    assert f.size < before


def test_variable_groups_stay_contiguous(manager):
    for i in range(6):
        manager.var(i)
    manager.set_variable_groups([(0, 1), (2, 3), (4, 5)])
    functions = _random_functions(manager, 6, 6, seed=3)
    tables = [brute_force(f, tuple(range(6))) for f in functions]
    manager.reorder()
    order = manager.var_order()
    for pair in ((0, 1), (2, 3), (4, 5)):
        assert order.index(pair[1]) == order.index(pair[0]) + 1, order
    for function, table in zip(functions, tables):
        assert brute_force(function, tuple(range(6))) == table


def test_variable_group_validation(manager):
    for i in range(4):
        manager.var(i)
    with pytest.raises(BDDError):
        manager.set_variable_groups([(0, 1), (1, 2)])  # overlapping
    with pytest.raises(BDDError):
        manager.set_variable_groups([(0, 2)])  # not adjacent


def test_order_persistence_round_trip(manager):
    functions = _random_functions(manager, 8, 8, seed=5)
    tables = [brute_force(f, tuple(range(8))) for f in functions]
    manager.reorder()
    saved = manager.var_order()
    manager.set_var_order(tuple(range(8)))
    assert manager.var_order() == tuple(range(8))
    manager.set_var_order(saved)
    assert manager.var_order() == saved
    for function, table in zip(functions, tables):
        assert brute_force(function, tuple(range(8))) == table
    with pytest.raises(BDDError):
        manager.set_var_order((0, 1))  # not a permutation of all variables


def test_auto_reorder_threshold_triggers_and_doubles(manager):
    auto = BDDManager(auto_reorder_threshold=64)
    functions = _random_functions(auto, 10, 12, seed=9)
    tables = [brute_force(f, tuple(range(10))) for f in functions]
    stats = auto.stats()
    assert stats.reorder_runs >= 1
    assert auto.auto_reorder_threshold > 64
    for function, table in zip(functions, tables):
        assert brute_force(function, tuple(range(10))) == table


def test_operations_stay_correct_after_reorder(manager):
    functions = _random_functions(manager, 6, 4, seed=21)
    manager.reorder()
    a, b = functions[0], functions[1]
    assert brute_force(a & b, tuple(range(6))) == (
        brute_force(a, tuple(range(6))) & brute_force(b, tuple(range(6)))
    )
    quantified = a.exists([2, 3])
    for values in product([False, True], repeat=6):
        assignment = dict(enumerate(values))
        expected = any(
            a.evaluate({**assignment, 2: x, 3: y})
            for x in (False, True)
            for y in (False, True)
        )
        assert quantified.evaluate(assignment) == expected


# ---------------------------------------------------------------------------
# Wrapper safety
# ---------------------------------------------------------------------------


def test_functions_from_different_managers_do_not_mix(manager, abc):
    other = BDDManager()
    foreign = BDDFunction.variable(other, 0)
    with pytest.raises(BDDError):
        abc[0] & foreign


def test_truthiness_is_rejected(abc):
    with pytest.raises(BDDError):
        bool(abc[0])


def test_evaluate_requires_support_coverage(manager, abc):
    a, b, _ = abc
    with pytest.raises(BDDError):
        (a & b).evaluate({0: True})
