"""Unit tests for the ROBDD manager and the BDDFunction wrapper.

Covers the invariants the symbolic engine relies on: hash-consing (structural
equality is node-id equality, no duplicate rows, both reduction rules),
apply-cache effectiveness, quantification and relational products against
brute-force truth tables, order-preserving renaming, satisfy-counting, and
the wrapper's operator algebra.
"""

from itertools import product

import pytest

from repro.bdd import BDDFunction, BDDManager
from repro.errors import BDDError

LEVELS = (0, 1, 2)


def brute_force(function, levels=LEVELS):
    """The truth table of a BDDFunction as a frozenset of satisfying tuples."""
    return frozenset(
        values
        for values in product([False, True], repeat=len(levels))
        if function.evaluate(dict(zip(levels, values)))
    )


@pytest.fixture()
def manager():
    return BDDManager()


@pytest.fixture()
def abc(manager):
    return tuple(BDDFunction.variable(manager, level) for level in LEVELS)


# ---------------------------------------------------------------------------
# Hash-consing
# ---------------------------------------------------------------------------


def test_same_function_built_differently_is_same_node(manager, abc):
    a, b, c = abc
    de_morgan_left = ~(a | b)
    de_morgan_right = ~a & ~b
    assert de_morgan_left.node == de_morgan_right.node
    assert de_morgan_left == de_morgan_right
    assert (a & b) | (a & c) == a & (b | c)


def test_reduction_rules(manager):
    # Redundant test: mk(level, t, t) must collapse to t.
    v = manager.var(0)
    assert manager._mk(1, v, v) == v
    # Sharing: building the same triple twice yields the same id.
    left = manager._mk(2, 0, 1)
    right = manager._mk(2, 0, 1)
    assert left == right


def test_unique_table_has_no_duplicate_rows(manager, abc):
    a, b, c = abc
    _ = (a & b) | (b & c) | (a ^ c)
    rows = manager._nodes[2:]
    assert len(rows) == len(set(rows))


def test_terminals_and_literals(manager):
    t = BDDFunction.true(manager)
    f = BDDFunction.false(manager)
    assert t.is_true and f.is_false
    assert (~t) == f and (~f) == t
    v = BDDFunction.variable(manager, 4)
    assert (v | ~v).is_true
    assert (v & ~v).is_false


# ---------------------------------------------------------------------------
# Apply cache
# ---------------------------------------------------------------------------


def test_apply_cache_hits_on_repeated_conjunction(manager, abc):
    a, b, c = abc
    f = (a | b) & (b | c)
    before = manager.apply_cache_hits
    g = (a | b) & (b | c)  # same operands: every recursive step must hit
    assert g == f
    assert manager.apply_cache_hits > before


def test_apply_cache_shared_across_expressions(manager, abc):
    a, b, c = abc
    lhs = (a & b) | c
    misses_before = manager.apply_cache_misses
    rhs = (a & b) | c
    assert rhs == lhs
    # The second build re-resolves a & b from the cache without new misses.
    assert manager.apply_cache_misses == misses_before


def test_apply_dispatcher_derived_ops(manager, abc):
    a, b, _ = abc
    assert manager.apply("imp", a.node, b.node) == (~a | b).node
    assert manager.apply("iff", a.node, b.node) == ((a & b) | (~a & ~b)).node
    assert manager.apply("diff", a.node, b.node) == (a & ~b).node
    with pytest.raises(BDDError):
        manager.apply("nand", a.node, b.node)


# ---------------------------------------------------------------------------
# ite / restrict
# ---------------------------------------------------------------------------


def test_ite_matches_boolean_definition(manager, abc):
    a, b, c = abc
    assert a.ite(b, c) == (a & b) | (~a & c)
    assert a.ite(BDDFunction.true(manager), BDDFunction.false(manager)) == a


def test_restrict_is_cofactor(manager, abc):
    a, b, c = abc
    f = (a & b) | (~a & c)
    assert f.restrict(0, True) == b
    assert f.restrict(0, False) == c
    assert f.restrict(2, True).restrict(0, False).is_true


# ---------------------------------------------------------------------------
# Quantification and relational product
# ---------------------------------------------------------------------------


def test_exists_equals_or_of_cofactors(manager, abc):
    a, b, c = abc
    f = (a & b) | (b ^ c)
    assert f.exists([1]) == f.restrict(1, False) | f.restrict(1, True)
    assert f.forall([1]) == f.restrict(1, False) & f.restrict(1, True)


def test_exists_against_truth_table(manager, abc):
    a, b, c = abc
    f = (a | b) & (~b | c)
    quantified = f.exists([0, 2])
    for value in (False, True):
        expect = any(
            f.evaluate({0: x, 1: value, 2: z}) for x in (False, True) for z in (False, True)
        )
        assert quantified.evaluate({1: value}) == expect


def test_relprod_equals_unfused_quantified_conjunction(manager, abc):
    a, b, c = abc
    # Check the fused relational product against exists(f & g) for a grid of
    # operand shapes, including ones whose conjunction is constant.
    operands = [a & b, a | ~c, b ^ c, a.ite(b, c), ~a, BDDFunction.true(manager)]
    for f in operands:
        for g in operands:
            for cube in ([0], [1], [0, 1], [0, 1, 2], [2]):
                assert f.relprod(g, cube) == (f & g).exists(cube), (f, g, cube)


def test_rename_shifts_support(manager, abc):
    a, b, c = abc
    f = (a & b) | c
    shifted = f.rename({0: 10, 1: 11, 2: 12})
    assert shifted.support() == frozenset({10, 11, 12})
    assert brute_force(shifted, (10, 11, 12)) == brute_force(f)


def test_rename_rejects_order_violations(manager, abc):
    a, b, _ = abc
    with pytest.raises(BDDError):
        (a & b).rename({0: 5, 1: 3})


def test_rename_rejects_interleaving_with_unmapped_support(manager):
    # {0: 5} is trivially monotone on its own, but moving level 0 past the
    # *unmapped* support level 3 would build an unordered diagram.
    f = BDDFunction.variable(manager, 0) & BDDFunction.variable(manager, 3)
    with pytest.raises(BDDError):
        f.rename({0: 5})


# ---------------------------------------------------------------------------
# Counting, models, support
# ---------------------------------------------------------------------------


def test_sat_count_weights_free_variables(manager, abc):
    a, b, c = abc
    f = a & b
    assert f.sat_count([0, 1]) == 1
    assert f.sat_count([0, 1, 2]) == 2
    assert f.sat_count([0, 1, 2, 3, 4]) == 8
    assert BDDFunction.true(manager).sat_count(LEVELS) == 8
    assert BDDFunction.false(manager).sat_count(LEVELS) == 0


def test_sat_count_requires_support_coverage(manager, abc):
    a, b, _ = abc
    with pytest.raises(BDDError):
        (a & b).sat_count([0])


def test_models_enumerate_exactly_the_satisfying_assignments(manager, abc):
    a, b, c = abc
    f = (a | b) & ~c
    models = list(f.models(LEVELS))
    assert len(models) == f.sat_count(LEVELS)
    assert len({tuple(sorted(m.items())) for m in models}) == len(models)
    for model in models:
        assert f.evaluate(model)


def test_support_and_size(manager, abc):
    a, _, c = abc
    f = a ^ c
    assert f.support() == frozenset({0, 2})
    assert f.size == manager.node_count(f.node)
    assert BDDFunction.true(manager).support() == frozenset()


def test_cube_builder(manager):
    cube = manager.cube({0: True, 2: False, 4: True})
    assert manager.evaluate(cube, {0: True, 2: False, 4: True})
    assert not manager.evaluate(cube, {0: True, 2: True, 4: True})
    assert manager.sat_count(cube, (0, 1, 2, 3, 4)) == 4


# ---------------------------------------------------------------------------
# Wrapper safety
# ---------------------------------------------------------------------------


def test_functions_from_different_managers_do_not_mix(manager, abc):
    other = BDDManager()
    foreign = BDDFunction.variable(other, 0)
    with pytest.raises(BDDError):
        abc[0] & foreign


def test_truthiness_is_rejected(abc):
    with pytest.raises(BDDError):
        bool(abc[0])


def test_evaluate_requires_support_coverage(manager, abc):
    a, b, _ = abc
    with pytest.raises(BDDError):
        (a & b).evaluate({0: True})
