"""Unit tests for the compiled bitset representation of Kripke structures."""

import pytest

from repro.errors import StructureError
from repro.kripke.compiled import (
    CompiledKripkeStructure,
    bits_of,
    compile_structure,
    popcount,
)
from repro.kripke.indexed import IndexedKripkeStructure
from repro.kripke.structure import IndexedProp, KripkeStructure
from repro.logic.ast import Atom, ExactlyOne, FalseLiteral, IndexedAtom, Not, TrueLiteral


def test_popcount_and_bits_roundtrip():
    mask = 0b1011001
    assert popcount(mask) == 4
    assert list(bits_of(mask)) == [0, 3, 4, 6]
    assert popcount(0) == 0
    assert list(bits_of(0)) == []


def test_compile_assigns_dense_indices_and_preserves_relations(branching_structure):
    compiled = compile_structure(branching_structure)
    assert compiled.num_states == branching_structure.num_states
    assert compiled.num_transitions == branching_structure.num_transitions
    assert compiled.source is branching_structure
    assert compiled.state_of(compiled.initial_index) == branching_structure.initial_state
    for state in branching_structure.states:
        index = compiled.index_of(state)
        assert compiled.state_of(index) == state
        successors = {compiled.state_of(i) for i in compiled.successors_of(index)}
        assert successors == set(branching_structure.successors(state))
        predecessors = {compiled.state_of(i) for i in compiled.predecessors_of(index)}
        assert predecessors == set(branching_structure.predecessors(state))
        assert compiled.successor_mask(index) == compiled.mask_of(successors)
        assert compiled.predecessor_mask(index) == compiled.mask_of(predecessors)


def test_compile_is_deterministic(branching_structure):
    first = CompiledKripkeStructure(branching_structure)
    second = CompiledKripkeStructure(branching_structure)
    assert first.states == second.states
    assert [first.successor_mask(i) for i in range(first.num_states)] == [
        second.successor_mask(i) for i in range(second.num_states)
    ]


def test_compile_structure_is_idempotent_and_memoised(branching_structure):
    compiled = compile_structure(branching_structure)
    assert compile_structure(compiled) is compiled
    # Repeat compilations of the same live structure share one compiled form.
    assert compile_structure(branching_structure) is compiled


def test_mask_set_roundtrip(branching_structure):
    compiled = compile_structure(branching_structure)
    subset = frozenset(["a", "d"])
    mask = compiled.mask_of(subset)
    assert popcount(mask) == 2
    assert compiled.states_of(mask) == subset
    assert compiled.states_of(compiled.all_mask) == branching_structure.states
    with pytest.raises(StructureError):
        compiled.mask_of(["not-a-state"])
    with pytest.raises(StructureError):
        compiled.index_of("not-a-state")


def test_atom_masks_match_labels(branching_structure):
    compiled = compile_structure(branching_structure)
    assert compiled.atom_mask(TrueLiteral()) == compiled.all_mask
    assert compiled.atom_mask(FalseLiteral()) == 0
    p_states = compiled.states_of(compiled.atom_mask(Atom("p")))
    assert p_states == frozenset(["b", "d"])
    assert compiled.atom_mask(Atom("no_such_prop")) == 0
    with pytest.raises(StructureError):
        compiled.atom_mask(Not(Atom("p")))


def test_preimage_matches_naive_definition(branching_structure):
    compiled = compile_structure(branching_structure)
    target = compiled.mask_of(["b"])
    preimage = compiled.states_of(compiled.preimage(target))
    expected = frozenset(
        state
        for state in branching_structure.states
        if branching_structure.successors(state) & frozenset(["b"])
    )
    assert preimage == expected


def test_indexed_atom_and_exactly_one_masks():
    structure = IndexedKripkeStructure(
        states=["s0", "s1", "s2"],
        transitions=[("s0", "s1"), ("s1", "s2"), ("s2", "s0")],
        labeling={
            "s0": {IndexedProp("t", 1)},
            "s1": {IndexedProp("t", 1), IndexedProp("t", 2)},
            "s2": set(),
        },
        initial_state="s0",
        index_values=[1, 2],
    )
    compiled = compile_structure(structure)
    t1 = compiled.states_of(compiled.atom_mask(IndexedAtom("t", 1)))
    assert t1 == frozenset(["s0", "s1"])
    theta = compiled.states_of(compiled.atom_mask(ExactlyOne("t")))
    assert theta == frozenset(["s0"])
    # The Θ mask is memoised: the second lookup must return the same mask.
    assert compiled.atom_mask(ExactlyOne("t")) == compiled.atom_mask(ExactlyOne("t"))


def test_exactly_one_requires_indexed_structure(branching_structure):
    compiled = compile_structure(branching_structure)
    with pytest.raises(StructureError):
        compiled.atom_mask(ExactlyOne("t"))


def test_is_total_flags_deadlocks():
    structure = KripkeStructure(
        states=["alive", "dead"],
        transitions=[("alive", "dead")],
        labeling={},
        initial_state="alive",
    )
    compiled = compile_structure(structure)
    assert not compiled.is_total()
