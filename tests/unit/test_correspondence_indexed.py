"""Unit tests for the indexed correspondence and the parameterized-verification workflow."""

import pytest

from repro.errors import CorrespondenceError, RestrictionError
from repro.correspondence.indexed import (
    IndexRelation,
    ParameterizedVerifier,
    indexed_correspondence,
    verify_index_relation,
)
from repro.systems import round_robin, token_ring


# ---------------------------------------------------------------------------
# IndexRelation
# ---------------------------------------------------------------------------


def test_index_relation_from_pairs_and_iteration():
    relation = IndexRelation.from_pairs([(1, 1), (2, 3), (2, 2)])
    assert len(relation) == 3
    assert list(relation) == [(1, 1), (2, 2), (2, 3)]


def test_index_relation_totality():
    relation = IndexRelation.from_pairs([(1, 1), (2, 2), (2, 3)])
    assert relation.is_total_for([1, 2], [1, 2, 3])
    assert not relation.is_total_for([1, 2, 3], [1, 2, 3])
    assert not relation.is_total_for([1, 2], [1, 2, 3, 4])


def test_pivot_relation_matches_the_paper_pattern():
    relation = IndexRelation.pivot([1, 2], [1, 2, 3, 4], pivot=1)
    assert (1, 1) in relation.pairs
    assert (2, 2) in relation.pairs and (2, 4) in relation.pairs
    assert (1, 2) not in relation.pairs
    assert relation.is_total_for([1, 2], [1, 2, 3, 4])


def test_pivot_relation_validates_arguments():
    with pytest.raises(CorrespondenceError):
        IndexRelation.pivot([2, 3], [1, 2, 3], pivot=1)
    with pytest.raises(CorrespondenceError):
        IndexRelation.pivot([1], [1, 2], pivot=1)


def test_section5_index_relation_shape():
    relation = token_ring.section5_index_relation(5)
    assert (1, 1) in relation.pairs
    assert all((2, value) in relation.pairs for value in range(2, 6))
    assert relation.is_total_for([1, 2], range(1, 6))


def test_corrected_index_relation_shape():
    relation = token_ring.corrected_index_relation(3, 5)
    assert (1, 1) in relation.pairs
    assert (2, 5) in relation.pairs and (3, 2) in relation.pairs
    assert (1, 2) not in relation.pairs
    assert relation.is_total_for(range(1, 4), range(1, 6))


# ---------------------------------------------------------------------------
# Indexed correspondence
# ---------------------------------------------------------------------------


def test_round_robin_reductions_correspond(round_robin2, round_robin4):
    relation = indexed_correspondence(round_robin2, round_robin4, 1, 1)
    assert relation is not None
    relation22 = indexed_correspondence(round_robin2, round_robin4, 2, 3)
    assert relation22 is not None


def test_ring2_does_not_correspond_to_ring3(ring2, ring3):
    assert indexed_correspondence(ring2, ring3, 1, 1) is None


def test_ring3_corresponds_to_ring4(ring3, ring4):
    assert indexed_correspondence(ring3, ring4, 1, 1) is not None
    assert indexed_correspondence(ring3, ring4, 2, 3) is not None


def test_verify_index_relation_reports_per_pair(ring2, ring3):
    report = verify_index_relation(ring2, ring3, token_ring.section5_index_relation(3))
    assert not report.holds
    assert report.total
    assert (1, 1) in report.failing_pairs


def test_verify_index_relation_success(round_robin2, round_robin4):
    report = verify_index_relation(
        round_robin2, round_robin4, round_robin.round_robin_index_relation(4)
    )
    assert report.holds
    assert report.failing_pairs == []
    assert all(relation is not None for relation in report.relations.values())


def test_report_requires_totality(round_robin2, round_robin4):
    partial = IndexRelation.from_pairs([(1, 1)])
    report = verify_index_relation(round_robin2, round_robin4, partial)
    assert not report.total
    assert not report.holds


# ---------------------------------------------------------------------------
# ParameterizedVerifier
# ---------------------------------------------------------------------------


def test_verifier_transfers_verdicts(round_robin2, round_robin4):
    verifier = ParameterizedVerifier(
        round_robin2, round_robin4, round_robin.round_robin_index_relation(4)
    )
    results = verifier.check_all(round_robin.round_robin_properties().values())
    assert all(result.holds for result in results)
    assert all(result.transferred_to == round_robin4.name for result in results)
    assert bool(results[0]) is True


def test_verifier_memoises_the_report(round_robin2, round_robin4):
    verifier = ParameterizedVerifier(
        round_robin2, round_robin4, round_robin.round_robin_index_relation(4)
    )
    assert verifier.report is None
    first = verifier.establish()
    assert verifier.establish() is first
    assert verifier.report is first
    assert verifier.small is round_robin2 and verifier.large is round_robin4


def test_verifier_refuses_when_correspondence_fails(ring2, ring3):
    verifier = ParameterizedVerifier(ring2, ring3, token_ring.section5_index_relation(3))
    with pytest.raises(CorrespondenceError):
        verifier.check(token_ring.property_eventual_entry())


def test_verifier_rejects_unrestricted_formulas(round_robin2, round_robin4):
    from repro.systems import figures

    verifier = ParameterizedVerifier(
        round_robin2, round_robin4, round_robin.round_robin_index_relation(4)
    )
    with pytest.raises(RestrictionError):
        verifier.check(figures.fig41_counting_formula(2))
