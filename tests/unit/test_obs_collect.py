"""Unit tests for cross-process telemetry collection (repro.obs.collect).

Two layers: pure in-process tests of the context/buffer/collector pieces
(with hand-built payloads, including hostile ones — a chaos-garbled
pickle can decode to anything), and fork-based end-to-end tests through
the real :class:`~repro.runtime.supervisor.Supervisor` pinning the
properties the portfolio relies on: worker spans land under the span
that was open at launch, partial buffers survive crashes and
cancellation, and corrupt telemetry is dropped without poisoning the
parent trace.  Worker functions are module-level (pickled by reference
under the fork start method) and pin ``chaos=ChaosConfig()`` so the CI
chaos lane cannot perturb them.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import time

import pytest

from repro.obs import trace as trace_module
from repro.obs.collect import (
    TELEMETRY_BATCH_SPANS,
    RemoteSpanRecord,
    TelemetryCollector,
    TraceContext,
    WorkerTelemetry,
    _BufferSink,
    validate_span_dict,
)
from repro.obs.metrics import REGISTRY, MetricsRegistry, counter
from repro.obs.trace import recording, span
from repro.runtime.chaos import ChaosConfig
from repro.runtime.limits import checkpoint
from repro.runtime.supervisor import Supervisor, WorkerTask

#: Forces chaos off inside workers even when REPRO_CHAOS is exported.
_NO_CHAOS = ChaosConfig()


@pytest.fixture(autouse=True)
def _clean_obs_state():
    REGISTRY.reset()
    yield
    REGISTRY.reset()
    trace_module.disable()
    trace_module.clear_current_span()


# -- TraceContext ----------------------------------------------------------


def test_capture_without_tracer_is_disabled():
    context = TraceContext.capture()
    assert not context.enabled
    assert context.trace_id is None
    assert context.parent_span_id is None
    assert context.parent_depth == -1


def test_capture_snapshots_tracer_and_open_span():
    with recording() as tracer:
        with span("portfolio.race") as race:
            context = TraceContext.capture()
    assert context.enabled
    assert context.trace_id == tracer.trace_id
    assert context.parent_span_id == race.span_id
    assert context.parent_depth == race.depth


def test_trace_context_pickles_across_the_fork_boundary():
    context = TraceContext(
        trace_id="cafe", parent_span_id=9, parent_depth=2, enabled=True
    )
    clone = pickle.loads(pickle.dumps(context))
    assert clone.trace_id == "cafe"
    assert clone.parent_span_id == 9
    assert clone.parent_depth == 2
    assert clone.enabled


# -- validate_span_dict ----------------------------------------------------


def _span_dict(span_id, parent_id, name, start, end, status="ok", **attrs):
    return {
        "kind": "span",
        "span_id": span_id,
        "parent_id": parent_id,
        "name": name,
        "depth": 0,
        "start_ns": start,
        "end_ns": end,
        "dur_ns": end - start,
        "status": status,
        "attrs": attrs,
    }


def test_validate_span_dict_accepts_a_sound_record():
    assert validate_span_dict(_span_dict(1, None, "mc.check", 10, 20))
    assert validate_span_dict(_span_dict(2, 1, "sat.solve", 10, 10))


@pytest.mark.parametrize(
    "mutation",
    [
        {"name": ""},
        {"name": 7},
        {"span_id": "1"},
        {"parent_id": "root"},
        {"start_ns": 1.5},
        {"end_ns": 5},  # ends before start_ns=10
        {"status": None},
        {"attrs": [("k", "v")]},
    ],
)
def test_validate_span_dict_rejects_malformed_records(mutation):
    record = _span_dict(1, None, "mc.check", 10, 20)
    record.update(mutation)
    assert not validate_span_dict(record)


def test_validate_span_dict_rejects_non_dicts():
    assert not validate_span_dict(None)
    assert not validate_span_dict(["span"])
    assert not validate_span_dict("span")


# -- _BufferSink -----------------------------------------------------------


class _FakeRecord:
    def __init__(self, name):
        self.name = name

    def as_dict(self):
        return {"name": self.name}


def test_buffer_sink_ships_full_batches_then_flushes_the_rest():
    shipped = []
    sink = _BufferSink(shipped.append, batch_spans=2)
    sink.on_span(_FakeRecord("a"))
    assert shipped == []  # below the batch threshold
    sink.on_span(_FakeRecord("b"))
    assert [s["name"] for s in shipped[0]["spans"]] == ["a", "b"]
    sink.on_event({"name": "heartbeat"})  # events never buffer or ship
    sink.on_span(_FakeRecord("c"))
    sink.close()
    assert [s["name"] for s in shipped[1]["spans"]] == ["c"]
    sink.close()  # nothing buffered: no empty batch
    assert len(shipped) == 2


# -- WorkerTelemetry -------------------------------------------------------


class _FakeConn:
    def __init__(self):
        self.sent = []

    def send(self, message):
        self.sent.append(message)


class _DeadConn:
    def send(self, message):
        raise BrokenPipeError


def test_worker_telemetry_ships_span_batches_and_final_metrics():
    conn = _FakeConn()
    context = TraceContext(
        trace_id="cafe", parent_span_id=7, parent_depth=0, enabled=True
    )
    telemetry = WorkerTelemetry(context, conn, "t", batch_spans=2)
    with span("a"):
        pass
    with span("b"):
        pass
    with span("c"):
        pass
    counter("collect.test.events").inc(3)
    telemetry.close()
    telemetry.close()  # idempotent: no duplicate final snapshot
    assert [m[0] for m in conn.sent] == ["telemetry"] * 3
    for _, task_id, blob, digest in conn.sent:
        assert task_id == "t"
        assert hashlib.sha256(blob).hexdigest() == digest
    first, second, final = [pickle.loads(m[2]) for m in conn.sent]
    assert all(p["pid"] == os.getpid() for p in (first, second, final))
    assert [s["name"] for s in first["spans"]] == ["a", "b"]
    assert [s["name"] for s in second["spans"]] == ["c"]
    assert {r["name"] for r in final["metrics"]} == {"collect.test.events"}
    # close() uninstalled the worker tracer.
    assert not trace_module.is_enabled()


def test_worker_telemetry_with_disabled_context_silences_tracing():
    trace_module.enable([])  # the tracer a forked child would inherit
    conn = _FakeConn()
    telemetry = WorkerTelemetry(TraceContext(), conn, "t")
    # The inherited tracer writes to the parent's sinks; it must be gone.
    assert not trace_module.is_enabled()
    with span("invisible"):
        pass
    telemetry.close()
    assert conn.sent == []  # no spans recorded, registry empty


def test_worker_telemetry_survives_a_dead_supervisor_pipe():
    context = TraceContext(trace_id="cafe", parent_span_id=1, enabled=True)
    telemetry = WorkerTelemetry(context, _DeadConn(), "t", batch_spans=1)
    with span("a"):
        pass  # batch of one ships immediately into the broken pipe
    counter("collect.test.events").inc()
    telemetry.close()  # must not raise


# -- TelemetryCollector ----------------------------------------------------


def _blob(payload):
    blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    return blob, hashlib.sha256(blob).hexdigest()


def _context_for(tracer, parent):
    return TraceContext(
        trace_id=tracer.trace_id,
        parent_span_id=parent.span_id,
        parent_depth=parent.depth,
        enabled=True,
    )


def test_collector_rejects_digest_mismatch():
    registry = MetricsRegistry()
    collector = TelemetryCollector(registry=registry)
    blob, _ = _blob({"pid": 1, "metrics": []})
    assert not collector.ingest("bmc", None, blob, "0" * 64)
    assert not collector.ingest("bmc", None, "not-bytes", "0" * 64)
    assert collector.dropped == 2
    assert registry.snapshot()["obs.collect.dropped{worker=bmc}"] == 2


def test_collector_rejects_undecodable_and_misshapen_payloads():
    registry = MetricsRegistry()
    collector = TelemetryCollector(registry=registry)
    garbage = b"\x80\x04 definitely not a pickle"
    assert not collector.ingest(
        "bmc", None, garbage, hashlib.sha256(garbage).hexdigest()
    )
    for payload in (["spans"], {"spans": []}, {"pid": "4"}):
        blob, digest = _blob(payload)
        assert not collector.ingest("bmc", None, blob, digest)
    assert collector.dropped == 4
    assert collector.spans_ingested == 0


def test_collector_reparents_worker_spans_under_the_captured_parent():
    registry = MetricsRegistry()
    collector = TelemetryCollector(registry=registry)
    with recording() as tracer:
        with span("portfolio.race") as race:
            context = _context_for(tracer, race)
            # Completion order: the child finishes before its parent.
            blob, digest = _blob(
                {
                    "pid": 4242,
                    "spans": [
                        _span_dict(2, 1, "sat.solve", 20, 30),
                        _span_dict(1, None, "mc.check", 10, 40, engine="bmc"),
                    ],
                }
            )
            assert collector.ingest("bmc", context, blob, digest)
    remote = [r for r in tracer.records if isinstance(r, RemoteSpanRecord)]
    outer = next(r for r in remote if r.name == "mc.check")
    inner = next(r for r in remote if r.name == "sat.solve")
    # The worker root hangs off the race span; the child off its parent —
    # despite arriving first, thanks to the start-time sort.
    assert outer.parent_id == race.span_id
    assert inner.parent_id == outer.span_id
    assert outer.span_id != 1  # remapped into the parent tracer's id space
    assert outer.pid == inner.pid == 4242
    assert outer.lane == inner.lane == "bmc"
    assert outer.attrs == {"engine": "bmc", "worker": "bmc"}
    assert collector.spans_ingested == 2
    assert registry.snapshot()["obs.collect.spans{worker=bmc}"] == 2
    # The ingestion itself was traced on the coordinator's own lane.
    assert any(r.name == "obs.collect" for r in tracer.records)


def test_collector_id_map_spans_batches_from_the_same_worker():
    collector = TelemetryCollector(registry=MetricsRegistry())
    with recording() as tracer:
        with span("portfolio.race") as race:
            context = _context_for(tracer, race)
            first, digest1 = _blob(
                {"pid": 7, "spans": [_span_dict(1, None, "mc.check", 10, 40)]}
            )
            second, digest2 = _blob(
                {"pid": 7, "spans": [_span_dict(2, 1, "ic3.frame", 50, 60)]}
            )
            collector.ingest("ic3", context, first, digest1)
            collector.ingest("ic3", context, second, digest2)
    remote = [r for r in tracer.records if isinstance(r, RemoteSpanRecord)]
    outer = next(r for r in remote if r.name == "mc.check")
    later = next(r for r in remote if r.name == "ic3.frame")
    assert later.parent_id == outer.span_id


def test_collector_reparents_orphans_to_the_race_span():
    collector = TelemetryCollector(registry=MetricsRegistry())
    with recording() as tracer:
        with span("portfolio.race") as race:
            context = _context_for(tracer, race)
            # Parent id 99 was never shipped (lost with a crashed batch).
            blob, digest = _blob(
                {"pid": 7, "spans": [_span_dict(3, 99, "sat.solve", 10, 20)]}
            )
            collector.ingest("bmc", context, blob, digest)
    [orphan] = [r for r in tracer.records if isinstance(r, RemoteSpanRecord)]
    assert orphan.parent_id == race.span_id


def test_collector_skips_spans_captured_against_a_foreign_tracer():
    registry = MetricsRegistry()
    collector = TelemetryCollector(registry=registry)
    context = TraceContext(
        trace_id="feedface00000000", parent_span_id=1, parent_depth=0, enabled=True
    )
    source = MetricsRegistry()
    source.counter("sat.conflicts").inc(5)
    blob, digest = _blob(
        {
            "pid": 7,
            "spans": [_span_dict(1, None, "mc.check", 10, 40)],
            "metrics": source.as_records(),
        }
    )
    with recording() as tracer:  # fresh tracer: trace ids cannot match
        assert collector.ingest("bmc", context, blob, digest)
        assert not any(isinstance(r, RemoteSpanRecord) for r in tracer.records)
    # Metrics still merge — they are not tied to a tracer's id space.
    assert collector.spans_ingested == 0
    assert collector.series_merged == 1
    assert registry.snapshot()["sat.conflicts{worker=bmc}"] == 5


def test_collector_drops_invalid_span_records_but_keeps_the_valid():
    registry = MetricsRegistry()
    collector = TelemetryCollector(registry=registry)
    with recording() as tracer:
        with span("portfolio.race") as race:
            context = _context_for(tracer, race)
            blob, digest = _blob(
                {
                    "pid": 7,
                    "spans": [
                        {"anything": "dict-like"},
                        _span_dict(1, None, "mc.check", 10, 40),
                        _span_dict(2, None, "", 10, 40),  # empty name
                    ],
                }
            )
            assert collector.ingest("bmc", context, blob, digest)
    remote = [r for r in tracer.records if isinstance(r, RemoteSpanRecord)]
    assert [r.name for r in remote] == ["mc.check"]
    assert collector.dropped == 2
    assert registry.snapshot()["obs.collect.dropped{worker=bmc}"] == 2


def test_collector_merges_metrics_and_counts_skipped_records():
    registry = MetricsRegistry()
    collector = TelemetryCollector(registry=registry)
    source = MetricsRegistry()
    source.counter("sat.conflicts", engine="bmc").inc(7)
    records = source.as_records()
    records.append({"kind": "unknown", "name": "x", "labels": {}, "value": 0})
    blob, digest = _blob({"pid": 7, "metrics": records})
    assert collector.ingest("bmc", None, blob, digest)
    assert collector.series_merged == 1
    assert collector.dropped == 1
    snapshot = registry.snapshot()
    assert snapshot["sat.conflicts{engine=bmc,worker=bmc}"] == 7
    assert snapshot["obs.collect.series{worker=bmc}"] == 1
    assert snapshot["obs.collect.batches{worker=bmc}"] == 1


def test_collector_heartbeat_becomes_an_instant_event_on_the_worker_lane():
    collector = TelemetryCollector(registry=MetricsRegistry())
    with recording() as tracer:
        with span("portfolio.race") as race:
            context = _context_for(tracer, race)
            collector.ingest_heartbeat("bmc", 4242, "[progress] depth=3", context)
    [beat] = [e for e in tracer.events if e["name"] == "worker.heartbeat"]
    assert beat["parent_id"] == race.span_id
    assert beat["attrs"] == {"worker": "bmc", "text": "[progress] depth=3"}
    assert beat["pid"] == 4242
    assert beat["lane"] == "bmc"


def test_collector_heartbeat_is_a_noop_without_a_tracer():
    collector = TelemetryCollector(registry=MetricsRegistry())
    collector.ingest_heartbeat("bmc", 4242, "text", TraceContext(enabled=True))
    collector.ingest_heartbeat("bmc", 4242, "text", None)


# -- end to end through the fork boundary ----------------------------------


def _traced_worker():
    with span("work.outer", engine="fake"):
        with span("work.inner"):
            pass
    counter("work.items", kind="unit").inc(3)
    return "done"


def _crashing_traced_worker():
    # One full batch ships mid-run; the 6 spans left in the buffer (and
    # the final metrics snapshot) die with the process.
    for _ in range(TELEMETRY_BATCH_SPANS + 6):
        with span("crash.unit"):
            pass
    os._exit(11)


def _spinning_traced_worker():
    with span("spin.setup"):
        pass
    while True:
        checkpoint("collect.spin")
        time.sleep(0.005)


def _ok_after(delay):
    time.sleep(delay)
    return "ok"


def test_worker_spans_land_under_the_span_open_at_launch():
    with recording() as tracer:
        with span("portfolio.race") as race:
            sup = Supervisor(hang_timeout=10.0)
            outcomes = sup.run(
                [WorkerTask(id="t", fn=_traced_worker, chaos=_NO_CHAOS, label="bmc")]
            )
    assert outcomes["t"].ok
    remote = [r for r in tracer.records if isinstance(r, RemoteSpanRecord)]
    outer = next(r for r in remote if r.name == "work.outer")
    inner = next(r for r in remote if r.name == "work.inner")
    assert outer.parent_id == race.span_id
    assert inner.parent_id == outer.span_id
    assert outer.pid == inner.pid and outer.pid != os.getpid()
    assert outer.attrs["worker"] == "bmc"
    assert sup.collector.spans_ingested >= 2
    # The worker's registry snapshot merged home under its label.
    assert REGISTRY.snapshot()["work.items{kind=unit,worker=bmc}"] == 3


def test_worker_metrics_flow_home_even_with_tracing_disabled():
    sup = Supervisor(hang_timeout=10.0)
    outcomes = sup.run(
        [WorkerTask(id="t", fn=_traced_worker, chaos=_NO_CHAOS, label="w")]
    )
    assert outcomes["t"].ok
    assert sup.collector.spans_ingested == 0
    assert REGISTRY.snapshot()["work.items{kind=unit,worker=w}"] == 3


def test_shipped_batches_survive_a_worker_crash():
    with recording() as tracer:
        with span("portfolio.race"):
            sup = Supervisor(hang_timeout=10.0, max_restarts=0)
            outcome = sup.run(
                [
                    WorkerTask(
                        id="t",
                        fn=_crashing_traced_worker,
                        chaos=_NO_CHAOS,
                        label="crashy",
                    )
                ]
            )["t"]
    assert outcome.status == "crashed"
    remote = [r for r in tracer.records if isinstance(r, RemoteSpanRecord)]
    # Exactly the one full batch that shipped before the crash.
    assert len(remote) == TELEMETRY_BATCH_SPANS
    assert {r.name for r in remote} == {"crash.unit"}


def test_cancelled_worker_flushes_its_partial_buffer():
    with recording() as tracer:
        with span("portfolio.race"):
            sup = Supervisor(hang_timeout=10.0, grace=1.0)
            outcomes = sup.run(
                [
                    WorkerTask(
                        id="fast", fn=_ok_after, args=(0.4,), chaos=_NO_CHAOS
                    ),
                    WorkerTask(
                        id="spin",
                        fn=_spinning_traced_worker,
                        chaos=_NO_CHAOS,
                        label="spin",
                    ),
                ],
                stop_when=lambda outcomes: outcomes["fast"].status == "ok",
            )
    assert outcomes["fast"].ok
    assert outcomes["spin"].status == "cancelled"
    remote = [r for r in tracer.records if isinstance(r, RemoteSpanRecord)]
    # The loser's below-batch-size buffer shipped on the cancel path.
    setup = next(r for r in remote if r.name == "spin.setup")
    assert setup.lane == "spin"
    assert setup.status == "ok"


def test_garbled_telemetry_is_dropped_without_poisoning_the_parent_trace():
    with recording() as tracer:
        with span("portfolio.race") as race:
            sup = Supervisor(hang_timeout=10.0, max_restarts=0)
            outcome = sup.run(
                [
                    WorkerTask(
                        id="t",
                        fn=_traced_worker,
                        chaos=ChaosConfig({"garble": 1.0}, seed=5),
                        label="evil",
                    )
                ]
            )["t"]
    # The result payload garbled too: the attempt is a detected failure.
    assert outcome.status == "garbled"
    remote = [r for r in tracer.records if isinstance(r, RemoteSpanRecord)]
    assert remote == []
    assert sup.collector.dropped >= 1
    assert race.status == "ok"
    snapshot = REGISTRY.snapshot()
    assert snapshot["obs.collect.dropped{worker=evil}"] >= 1
    assert "work.items{kind=unit,worker=evil}" not in snapshot
