"""Unit tests for the symbolic Kripke encodings.

Covers the explicit binary encoding (`from_explicit` / `symbolic_structure`),
the process-family bit-block allocator, and the direct symbolic token ring,
which must represent exactly the structure `build_token_ring` builds
explicitly — same reachable states, transitions, labels, and totality.
"""

import pytest

from repro.bdd import BDDManager
from repro.errors import BDDError, StructureError
from repro.kripke.structure import IndexedProp, KripkeStructure
from repro.kripke.symbolic import (
    ProcessFamilyEncoding,
    SymbolicKripkeStructure,
    symbolic_structure,
)
from repro.logic.ast import Atom, ExactlyOne, IndexedAtom, Next, TrueLiteral
from repro.systems import token_ring


# ---------------------------------------------------------------------------
# Explicit encodings
# ---------------------------------------------------------------------------


def test_from_explicit_counts_and_totality(branching_structure):
    encoded = symbolic_structure(branching_structure)
    assert encoded.num_states == branching_structure.num_states
    assert encoded.num_transitions == branching_structure.num_transitions
    assert encoded.is_total()
    assert encoded.name == branching_structure.name
    assert encoded.states_of(encoded.domain) == branching_structure.states
    assert encoded.states_of(encoded.initial) == frozenset({"a"})


def test_symbolic_structure_is_memoised_per_object(branching_structure):
    assert symbolic_structure(branching_structure) is symbolic_structure(branching_structure)
    assert symbolic_structure(symbolic_structure(branching_structure)) is (
        symbolic_structure(branching_structure)
    )


def test_preimage_and_image_match_adjacency(branching_structure):
    encoded = symbolic_structure(branching_structure)
    for state in branching_structure.states:
        singleton = encoded.manager.cube(encoded.encode_state(state))
        assert encoded.states_of(encoded.preimage(singleton)) == (
            branching_structure.predecessors(state)
        )
        assert encoded.states_of(
            encoded.manager.apply_and(encoded.image(singleton), encoded.domain)
        ) == branching_structure.successors(state)


def test_constrained_preimage_equals_intersected_preimage(branching_structure):
    """``preimage(t, constraint=c)`` must equal ``c ∧ preimage(t)`` for any sets."""
    encoded = symbolic_structure(branching_structure)
    manager = encoded.manager
    states = sorted(branching_structure.states, key=repr)
    cubes = {state: manager.cube(encoded.encode_state(state)) for state in states}
    import itertools

    sets = [0, encoded.domain] + [
        manager.apply_or(cubes[a], cubes[b])
        for a, b in itertools.combinations(states, 2)
    ]
    for target in sets:
        unconstrained = encoded.preimage(target)
        for constraint in sets:
            expected = manager.apply_and(constraint, unconstrained)
            assert encoded.preimage(target, constraint=constraint) == expected


def test_shared_manager_preserves_existing_sifting_groups():
    """A second encoding on a shared manager must not dissolve the first's pairs."""
    from repro.bdd import BDDManager

    manager = BDDManager()
    wide = SymbolicKripkeStructure(
        manager,
        3,
        [manager.cube({bit: False for bit in range(6)})],
        manager.cube({0: False, 2: False, 4: False}),
        manager.cube({0: False, 2: False, 4: False}),
        {},
    )
    narrow = SymbolicKripkeStructure(
        manager,
        1,
        [manager.cube({0: False, 1: False})],
        manager.cube({0: False}),
        manager.cube({0: False}),
        {},
    )
    groups = set(manager.variable_groups())
    assert {(0, 1), (2, 3), (4, 5)} <= groups
    manager.reorder()
    order = manager.var_order()
    for current, nxt in ((0, 1), (2, 3), (4, 5)):
        assert order.index(nxt) == order.index(current) + 1
    # Both encodings' current→next renames keep working after the reorder
    # (a split pair would raise BDDError inside preimage).
    wide_pre = wide.preimage(wide.domain)
    narrow_pre = narrow.preimage(narrow.domain)
    assert manager.apply_and(wide_pre, manager.negate(wide.domain)) == 0
    assert manager.apply_and(narrow_pre, manager.negate(narrow.domain)) == 0


def test_reachable_respects_unreachable_states():
    structure = KripkeStructure(
        states=["a", "b", "island"],
        transitions=[("a", "b"), ("b", "a"), ("island", "island")],
        labeling={"a": {"p"}, "island": {"p"}},
        initial_state="a",
    )
    encoded = symbolic_structure(structure)
    assert encoded.states_of(encoded.reachable()) == frozenset({"a", "b"})
    # ...but the domain (and prop functions) still cover the whole state set,
    # matching the explicit checkers' satisfaction-set semantics.
    assert encoded.states_of(encoded.domain) == frozenset({"a", "b", "island"})
    assert encoded.states_of(encoded.atom_node(Atom("p"))) == frozenset({"a", "island"})


def test_atom_node_variants(branching_structure):
    encoded = symbolic_structure(branching_structure)
    assert encoded.atom_node(TrueLiteral()) == encoded.domain
    assert encoded.states_of(encoded.atom_node(Atom("missing"))) == frozenset()
    with pytest.raises(StructureError):
        encoded.atom_node(Next(Atom("p")))
    with pytest.raises(StructureError):
        encoded._exactly_one_node("p")  # not an indexed structure


def test_holds_at_and_complement(branching_structure):
    encoded = symbolic_structure(branching_structure)
    p = encoded.atom_node(Atom("p"))
    assert encoded.holds_at(p, "b")
    assert not encoded.holds_at(p, "a")
    complement = encoded.complement(p)
    assert encoded.states_of(complement) == branching_structure.states - frozenset({"b", "d"})


# ---------------------------------------------------------------------------
# Process-family encoding
# ---------------------------------------------------------------------------


def test_family_encoding_layout_and_roundtrip():
    manager = BDDManager()
    encoding = ProcessFamilyEncoding(manager, (1, 2, 3), ("N", "D", "T", "C"))
    assert encoding.bits_per_process == 2
    assert encoding.num_bits == 6
    assert encoding.current_levels == tuple(2 * k for k in range(6))
    assignment = {1: "T", 2: "N", 3: "D"}
    model = encoding.encode(assignment)
    assert encoding.decode(model) == assignment
    cube = encoding.state_cube(assignment)
    assert manager.evaluate(cube, model)
    assert manager.sat_count(cube, encoding.current_levels) == 1


def test_family_encoding_unchanged_and_frame():
    manager = BDDManager()
    encoding = ProcessFamilyEncoding(manager, (1, 2), ("A", "B"))
    same = encoding.unchanged(1)
    # Process 1 unchanged: current and next bits agree, process 2 free.
    current = dict(encoding.encode({1: "B", 2: "A"}))
    nxt_same = {level + 1: value for level, value in encoding.encode({1: "B", 2: "B"}).items()}
    nxt_diff = {level + 1: value for level, value in encoding.encode({1: "A", 2: "B"}).items()}
    assert manager.evaluate(same, {**current, **nxt_same})
    assert not manager.evaluate(same, {**current, **nxt_diff})
    assert encoding.frame([1, 2]) == 1  # nothing to constrain


def test_family_encoding_rejects_bad_input():
    manager = BDDManager()
    with pytest.raises(StructureError):
        ProcessFamilyEncoding(manager, (), ("A", "B"))
    with pytest.raises(StructureError):
        ProcessFamilyEncoding(manager, (1, 1), ("A", "B"))
    with pytest.raises(StructureError):
        ProcessFamilyEncoding(manager, (1,), ("A",))
    encoding = ProcessFamilyEncoding(manager, (1, 2), ("A", "B"))
    with pytest.raises(StructureError):
        encoding.current(3, "A")
    with pytest.raises(StructureError):
        encoding.current(1, "Z")
    with pytest.raises(StructureError):
        encoding.state_cube({1: "A"})


# ---------------------------------------------------------------------------
# The direct symbolic token ring
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("size", [1, 2, 3, 4])
def test_symbolic_ring_equals_explicit_ring(size):
    symbolic = token_ring.symbolic_token_ring(size)
    explicit = token_ring.build_token_ring(size)
    assert symbolic.num_states == explicit.num_states
    assert symbolic.num_transitions == explicit.num_transitions
    assert symbolic.is_total()
    assert symbolic.index_values == explicit.index_values
    assert symbolic.states_of(symbolic.domain) == explicit.states
    assert symbolic.states_of(symbolic.initial) == frozenset({explicit.initial_state})
    # Labels agree proposition by proposition.
    for name in ("d", "n", "t", "c"):
        for value in explicit.index_values:
            atom = IndexedAtom(name, value)
            expected = frozenset(
                state
                for state in explicit.states
                if IndexedProp(name, value) in explicit.label(state)
            )
            assert symbolic.states_of(symbolic.atom_node(atom)) == expected


def test_symbolic_ring_transitions_match_explicit_successors():
    symbolic = token_ring.symbolic_token_ring(3)
    explicit = token_ring.build_token_ring(3)
    for state in explicit.states:
        singleton = symbolic.manager.cube(symbolic.encode_state(state))
        image = symbolic.manager.apply_and(symbolic.image(singleton), symbolic.domain)
        assert symbolic.states_of(image) == explicit.successors(state)


def test_symbolic_ring_exactly_one_token():
    symbolic = token_ring.symbolic_token_ring(3)
    theta = symbolic.atom_node(ExactlyOne("t"))
    # Exactly one token everywhere: Θ t is the whole reachable set.
    assert theta == symbolic.domain


def test_symbolic_ring_state_counts_via_satisfy_count():
    # r * 2^r reachable states: holder anywhere in T or C, others in N or D.
    for size in (2, 3, 4, 5, 6, 7, 8):
        symbolic = token_ring.symbolic_token_ring(size)
        assert symbolic.num_states == size * 2 ** size


def test_symbolic_ring_rejects_empty_ring():
    with pytest.raises(StructureError):
        token_ring.symbolic_token_ring(0)


def test_symbolic_ring_survives_reorder():
    """Sifting the ring encoding must not change any engine-visible answer.

    The current/next pairs are registered as sifting groups, so the c2n/n2c
    renames stay order-preserving and image computation keeps working after
    the variable order changes.
    """
    from repro.mc.symbolic import SymbolicCTLModelChecker

    symbolic = token_ring.symbolic_token_ring(4)
    explicit = token_ring.build_token_ring(4)
    checker = SymbolicCTLModelChecker(symbolic)
    family = {**token_ring.ring_properties(), **token_ring.ring_invariants()}
    before = checker.check_batch(family)
    symbolic.manager.reorder()
    order = symbolic.manager.var_order()
    for bit in range(symbolic.num_bits):
        assert order.index(2 * bit + 1) == order.index(2 * bit) + 1
    # Old memoised answers still decode; a fresh checker recomputes the same.
    assert checker.check_batch(family) == before
    fresh = SymbolicCTLModelChecker(symbolic)
    assert fresh.check_batch(family) == before
    assert symbolic.states_of(symbolic.domain) == explicit.states
    assert symbolic.num_states == explicit.num_states
    assert symbolic.num_transitions == explicit.num_transitions


def test_states_of_requires_decoder():
    manager = BDDManager()
    structure = SymbolicKripkeStructure(
        manager,
        1,
        [manager.cube({0: False, 1: False})],
        manager.cube({0: False}),
        manager.cube({0: False}),
        {},
    )
    with pytest.raises(BDDError):
        structure.states_of(structure.domain)
    with pytest.raises(BDDError):
        structure.encode_state("x")
