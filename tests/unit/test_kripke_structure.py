"""Unit tests for :class:`KripkeStructure` and :class:`IndexedKripkeStructure`."""

import pytest

from repro.errors import StructureError
from repro.kripke.indexed import IndexedKripkeStructure
from repro.kripke.structure import IndexedProp, KripkeStructure
from repro.logic.ast import Atom, ExactlyOne, IndexedAtom


def make_toggle():
    return KripkeStructure(
        states=["on", "off"],
        transitions=[("on", "off"), ("off", "on")],
        labeling={"on": {"p"}, "off": set()},
        initial_state="on",
    )


def test_basic_accessors():
    structure = make_toggle()
    assert structure.num_states == 2
    assert structure.num_transitions == 2
    assert structure.initial_state == "on"
    assert structure.successors("on") == frozenset({"off"})
    assert structure.predecessors("on") == frozenset({"off"})
    assert structure.label("on") == frozenset({"p"})
    assert structure.label("off") == frozenset()
    assert "on" in structure and "nowhere" not in structure


def test_transitions_accept_mapping_form():
    structure = KripkeStructure(
        states=[0, 1],
        transitions={0: [1], 1: [0, 1]},
        labeling={0: {"a"}},
        initial_state=0,
    )
    assert structure.successors(1) == frozenset({0, 1})
    assert structure.num_transitions == 3


def test_unlabelled_states_get_empty_labels():
    structure = KripkeStructure([1, 2], [(1, 2), (2, 1)], {}, 1)
    assert structure.label(2) == frozenset()


def test_atomic_propositions_collects_plain_names():
    structure = make_toggle()
    assert structure.atomic_propositions == frozenset({"p"})


def test_constructor_rejects_bad_initial_state():
    with pytest.raises(StructureError):
        KripkeStructure(["a"], [("a", "a")], {}, "missing")


def test_constructor_rejects_empty_state_set():
    with pytest.raises(StructureError):
        KripkeStructure([], [], {}, "a")


def test_constructor_rejects_unknown_transition_endpoints():
    with pytest.raises(StructureError):
        KripkeStructure(["a"], [("a", "b")], {}, "a")
    with pytest.raises(StructureError):
        KripkeStructure(["a"], [("b", "a")], {}, "a")


def test_constructor_rejects_unknown_labelled_state():
    with pytest.raises(StructureError):
        KripkeStructure(["a"], [("a", "a")], {"b": {"p"}}, "a")


def test_successors_of_unknown_state_raise():
    structure = make_toggle()
    with pytest.raises(StructureError):
        structure.successors("missing")
    with pytest.raises(StructureError):
        structure.label("missing")


def test_is_total_detects_deadlocks():
    total = make_toggle()
    assert total.is_total()
    partial = KripkeStructure(["a", "b"], [("a", "b")], {}, "a")
    assert not partial.is_total()


def test_transition_pairs_iterates_every_edge():
    structure = make_toggle()
    assert sorted(structure.transition_pairs()) == [("off", "on"), ("on", "off")]


def test_atom_holds_for_plain_and_indexed_atoms():
    structure = KripkeStructure(
        states=["s"],
        transitions=[("s", "s")],
        labeling={"s": {"p", IndexedProp("c", 2)}},
        initial_state="s",
    )
    assert structure.atom_holds("s", Atom("p"))
    assert not structure.atom_holds("s", Atom("q"))
    assert structure.atom_holds("s", IndexedAtom("c", 2))
    assert not structure.atom_holds("s", IndexedAtom("c", 1))


def test_atom_holds_rejects_exactly_one_on_plain_structure():
    structure = make_toggle()
    with pytest.raises(StructureError):
        structure.atom_holds("on", ExactlyOne("t"))


def test_atom_holds_rejects_non_atomic_formula():
    structure = make_toggle()
    with pytest.raises(StructureError):
        structure.atom_holds("on", Atom("p") & Atom("q"))


def test_with_labels_relabels_without_touching_transitions():
    structure = make_toggle()
    relabelled = structure.with_labels(lambda state, label: {"x"} if state == "on" else label)
    assert relabelled.label("on") == frozenset({"x"})
    assert relabelled.successors("on") == frozenset({"off"})


def test_to_dict_is_json_serialisable():
    import json

    structure = make_toggle()
    text = json.dumps(structure.to_dict())
    assert "on" in text


def test_indexed_structure_requires_index_set():
    with pytest.raises(StructureError):
        IndexedKripkeStructure(["s"], [("s", "s")], {}, "s", index_values=[])


def test_indexed_structure_checks_label_indices():
    with pytest.raises(StructureError):
        IndexedKripkeStructure(
            ["s"],
            [("s", "s")],
            {"s": {IndexedProp("c", 9)}},
            "s",
            index_values=[1, 2],
        )


def test_indexed_structure_checks_declared_prop_names():
    with pytest.raises(StructureError):
        IndexedKripkeStructure(
            ["s"],
            [("s", "s")],
            {"s": {IndexedProp("c", 1)}},
            "s",
            index_values=[1],
            indexed_prop_names={"d"},
        )


def test_indexed_structure_exactly_one_semantics():
    structure = IndexedKripkeStructure(
        states=["one", "two", "zero"],
        transitions=[("one", "two"), ("two", "zero"), ("zero", "one")],
        labeling={
            "one": {IndexedProp("t", 1)},
            "two": {IndexedProp("t", 1), IndexedProp("t", 2)},
            "zero": set(),
        },
        initial_state="one",
        index_values=[1, 2],
    )
    assert structure.atom_holds("one", ExactlyOne("t"))
    assert not structure.atom_holds("two", ExactlyOne("t"))
    assert not structure.atom_holds("zero", ExactlyOne("t"))
    assert structure.count_index_values("two", "t") == 2


def test_indexed_structure_infers_prop_names():
    structure = IndexedKripkeStructure(
        ["s"],
        [("s", "s")],
        {"s": {IndexedProp("c", 1), "plain"}},
        "s",
        index_values=[1],
    )
    assert structure.indexed_prop_names == frozenset({"c"})
    assert structure.atomic_propositions == frozenset({"plain"})
    assert structure.indexed_propositions == frozenset({IndexedProp("c", 1)})
