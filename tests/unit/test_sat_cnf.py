"""Unit tests for the CNF layer: gates, BDD lowering, DIMACS round-trips."""

import itertools

import pytest

from repro.bdd import BDDManager
from repro.sat.cnf import (
    CNF,
    SatError,
    enumerate_models,
    evaluate_clauses,
    naive_satisfiable,
    parse_dimacs,
    to_dimacs,
    tseitin_bdd,
)


def _models_of_output(cnf, inputs, output):
    """The input patterns under which the formula forces ``output`` true."""
    patterns = set()
    for model in enumerate_models(cnf):
        if model[abs(output)] == (output > 0):
            patterns.add(tuple(model[var] for var in inputs))
    return patterns


class TestGates:
    def test_gate_and_semantics(self):
        cnf = CNF()
        a, b, c = cnf.new_vars(3)
        out = cnf.gate_and([a, -b, c])
        expected = {
            pattern
            for pattern in itertools.product([False, True], repeat=3)
            if pattern[0] and not pattern[1] and pattern[2]
        }
        assert _models_of_output(cnf, (a, b, c), out) == expected

    def test_gate_or_semantics(self):
        cnf = CNF()
        a, b = cnf.new_vars(2)
        out = cnf.gate_or([-a, b])
        expected = {
            pattern
            for pattern in itertools.product([False, True], repeat=2)
            if (not pattern[0]) or pattern[1]
        }
        assert _models_of_output(cnf, (a, b), out) == expected

    def test_gate_xor_iff_ite(self):
        cnf = CNF()
        a, b, c = cnf.new_vars(3)
        x = cnf.gate_xor(a, b)
        e = cnf.gate_iff(a, b)
        t = cnf.gate_ite(a, b, c)
        for model in enumerate_models(cnf):
            va, vb, vc = model[a], model[b], model[c]
            assert (model[abs(x)] == (x > 0)) == (va ^ vb)
            assert (model[abs(e)] == (e > 0)) == (va == vb)
            assert (model[abs(t)] == (t > 0)) == (vb if va else vc)

    def test_empty_gates_are_constants(self):
        cnf = CNF()
        assert cnf.gate_and([]) == cnf.true_literal()
        assert cnf.gate_or([]) == -cnf.true_literal()

    def test_single_literal_gates_pass_through(self):
        cnf = CNF()
        a = cnf.new_var()
        assert cnf.gate_and([a]) == a
        assert cnf.gate_or([-a]) == -a


class TestBDDToCNF:
    def test_tseitin_bdd_matches_bdd_semantics(self):
        manager = BDDManager()
        x, y, z = manager.var(0), manager.var(1), manager.var(2)
        edge = manager.apply_or(manager.apply_and(x, manager.negate(y)), z)
        cnf = CNF()
        lits = {0: cnf.new_var(), 1: cnf.new_var(), 2: cnf.new_var()}
        out = tseitin_bdd(manager, edge, lits, cnf)
        for model in enumerate_models(cnf):
            assignment = {var: model[lit] for var, lit in lits.items()}
            assert (model[abs(out)] == (out > 0)) == manager.evaluate(edge, assignment)

    def test_tseitin_bdd_constants(self):
        manager = BDDManager()
        cnf = CNF()
        assert tseitin_bdd(manager, 1, {}, cnf) == cnf.true_literal()
        assert tseitin_bdd(manager, 0, {}, cnf) == -cnf.true_literal()

    def test_tseitin_bdd_complement_edge_negates_literal(self):
        manager = BDDManager()
        x = manager.var(0)
        cnf = CNF()
        cache = {}
        lits = {0: cnf.new_var()}
        positive = tseitin_bdd(manager, x, lits, cnf, cache)
        negative = tseitin_bdd(manager, manager.negate(x), lits, cnf, cache)
        assert negative == -positive

    def test_tseitin_bdd_missing_variable_mapping(self):
        manager = BDDManager()
        x = manager.var(0)
        with pytest.raises(SatError):
            tseitin_bdd(manager, x, {}, CNF())

    def test_tseitin_bdd_survives_deep_chains(self):
        """Lowering is iterative: a 3000-variable conjunction chain must not recurse."""
        import sys

        manager = BDDManager()
        width = 3000
        cube = manager.cube({var: True for var in range(width)})
        cnf = CNF()
        lits = {var: cnf.new_var() for var in range(width)}
        limit = sys.getrecursionlimit()
        try:
            sys.setrecursionlimit(200)
            out = tseitin_bdd(manager, cube, lits, cnf)
        finally:
            sys.setrecursionlimit(limit)
        cnf.add_clause([out])
        from repro.sat.solver import Solver

        solver = Solver()
        for _ in range(cnf.num_vars):
            solver.new_var()
        for clause in cnf.clauses:
            solver.add_clause(clause)
        assert solver.solve()
        assert all(solver.model_value(lit) for lit in lits.values())


class TestDimacs:
    def test_round_trip(self):
        cnf = CNF()
        a, b, c = cnf.new_vars(3)
        cnf.add_clause([a, -b])
        cnf.add_clause([-a, b, c])
        cnf.add_clause([-c])
        parsed = parse_dimacs(to_dimacs(cnf, comments=["round trip"]))
        assert parsed.num_vars == cnf.num_vars
        assert parsed.clauses == cnf.clauses

    def test_parse_multiline_clause(self):
        parsed = parse_dimacs("p cnf 3 2\n1 -2\n3 0\nc mid comment\n-1 2 0\n")
        assert parsed.clauses == [(1, -2, 3), (-1, 2)]

    @pytest.mark.parametrize(
        "text",
        [
            "1 2 0\n",  # clause before header
            "p cnf x 1\n1 0\n",  # non-numeric header
            "p cnf 2 1\n3 0\n",  # literal exceeds declared vars
            "p cnf 2 1\n1 2\n",  # unterminated clause
            "p cnf 2 1\np cnf 2 1\n1 0\n",  # duplicate header
            "p cnf 2 2\n1 0\n",  # clause count mismatch
            "",  # no header at all
        ],
    )
    def test_parse_rejects_malformed_documents(self, text):
        with pytest.raises(SatError):
            parse_dimacs(text)


class TestReferenceSemantics:
    def test_evaluate_clauses(self):
        assert evaluate_clauses([(1, -2)], {1: True, 2: True})
        assert not evaluate_clauses([(1,), (-1,)], {1: True})

    def test_naive_satisfiable(self):
        sat = CNF()
        a, b = sat.new_vars(2)
        sat.add_clause([a, b])
        assert naive_satisfiable(sat)
        unsat = CNF()
        v = unsat.new_var()
        unsat.add_clause([v])
        unsat.add_clause([-v])
        assert not naive_satisfiable(unsat)

    def test_zero_literal_rejected(self):
        with pytest.raises(SatError):
            CNF().add_clause([0])
