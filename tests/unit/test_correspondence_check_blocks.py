"""Unit tests for the correspondence decision algorithm and the Lemma 1 block machinery."""

import pytest

from repro.errors import CorrespondenceError
from repro.kripke.structure import KripkeStructure
from repro.correspondence.blocks import BlockMatching, blocks_correspond, corresponding_path
from repro.correspondence.check import find_correspondence, minimal_degrees, structures_correspond
from repro.correspondence.definition import is_correspondence
from repro.correspondence.relation import CorrespondenceRelation
from repro.systems import figures


def stutter_pair():
    """A one-step toggle vs. a version that stutters the p phase."""
    left = KripkeStructure(
        states=["L0", "L1"],
        transitions=[("L0", "L1"), ("L1", "L0")],
        labeling={"L0": {"p"}, "L1": {"q"}},
        initial_state="L0",
    )
    right = KripkeStructure(
        states=["R0", "R1", "R2"],
        transitions=[("R0", "R1"), ("R1", "R2"), ("R2", "R0")],
        labeling={"R0": {"p"}, "R1": {"p"}, "R2": {"q"}},
        initial_state="R0",
    )
    return left, right


def test_identical_structures_correspond_with_identity_degree_zero(toggle_structure):
    relation = find_correspondence(toggle_structure, toggle_structure)
    assert relation is not None
    for state in toggle_structure.states:
        assert relation.degree_or_none(state, state) == 0


def test_stuttering_structures_correspond():
    left, right = stutter_pair()
    relation = find_correspondence(left, right)
    assert relation is not None
    assert relation.corresponds("L0", "R0")
    assert relation.corresponds("L0", "R1")
    assert relation.corresponds("L1", "R2")
    # The state one step from the label change matches exactly.
    assert relation.degree("L0", "R1") == 0
    # The earlier stuttering state needs one transition before an exact match.
    assert relation.degree("L0", "R0") == 1
    # The result satisfies the definition.
    assert is_correspondence(left, right, relation)


def test_fig31_degrees_match_the_paper(fig31_pair):
    left, right = fig31_pair
    relation = find_correspondence(left, right)
    assert relation is not None
    assert relation.degree("s1", "s1'''") == 0
    assert relation.degree("s1", "s1'") == 2
    assert relation.degree("s1", "s1''") == 1
    assert relation.degree("s2", "s2'") == 0
    assert is_correspondence(left, right, relation)


def test_different_labels_do_not_correspond(toggle_structure):
    other = KripkeStructure(
        states=["x"],
        transitions=[("x", "x")],
        labeling={"x": {"r"}},
        initial_state="x",
    )
    assert find_correspondence(toggle_structure, other) is None
    assert not structures_correspond(toggle_structure, other)


def test_divergence_blocks_correspondence():
    # Left alternates p/q; right can stay in p forever (self-loop), so the
    # structures must not correspond: right has a path on which q never holds.
    left, right = stutter_pair()
    diverging = KripkeStructure(
        states=["R0", "R1"],
        transitions=[("R0", "R0"), ("R0", "R1"), ("R1", "R0")],
        labeling={"R0": {"p"}, "R1": {"q"}},
        initial_state="R0",
    )
    assert find_correspondence(left, diverging) is None


def test_correspondence_is_symmetric_between_the_two_roles(fig31_pair):
    left, right = fig31_pair
    forward = find_correspondence(left, right)
    backward = find_correspondence(right, left)
    assert forward is not None and backward is not None
    assert {(a, b) for a, b in forward.pairs()} == {(b, a) for a, b in backward.pairs()}


def test_require_flags_control_the_verdict(ring2, ring3):
    from repro.kripke.reduction import reduce_to_index

    left = reduce_to_index(ring2, 1)
    right = reduce_to_index(ring3, 1)
    # M_2|1 and M_3|1 do not correspond (see the Section 5 deviation), so the
    # strict call returns None ...
    assert find_correspondence(left, right) is None
    # ... but with the global requirements relaxed the (possibly empty)
    # fixpoint relation itself is returned instead of None.
    partial = find_correspondence(left, right, require_initial=False, require_total=False)
    assert partial is not None
    assert not partial.corresponds(left.initial_state, right.initial_state)


def test_minimal_degrees_relative_to_candidate_set():
    left, right = stutter_pair()
    candidates = {
        ("L0", "R0"),
        ("L0", "R1"),
        ("L1", "R2"),
    }
    degrees = minimal_degrees(left, right, candidates)
    assert degrees[("L0", "R1")] == 0
    assert degrees[("L0", "R0")] == 1
    assert degrees[("L1", "R2")] == 0


def test_max_degree_bound_can_exclude_pairs():
    left, right = figures.fig31_structures()
    relation = find_correspondence(left, right, max_degree=0, require_total=False, require_initial=False)
    # With degree capped at 0 only exactly-matching pairs remain.
    assert relation is not None
    assert all(degree == 0 for _, degree in relation.items())
    assert not relation.corresponds("s1", "s1'")


# ---------------------------------------------------------------------------
# Lemma 1 block matching
# ---------------------------------------------------------------------------


def test_corresponding_path_reproduces_stuttering_blocks():
    left, right = stutter_pair()
    relation = find_correspondence(left, right)
    path = ["L0", "L1", "L0", "L1"]
    matching = corresponding_path(left, right, relation, path)
    assert matching.left_path == tuple(path)
    assert blocks_correspond(relation, matching)
    # The right path is a genuine path of the right structure.
    from repro.kripke.paths import is_path

    assert is_path(right, list(matching.right_path))
    assert matching.right_path[0] == "R0"


def test_corresponding_path_from_the_other_side(fig31_pair):
    left, right = fig31_pair
    relation = find_correspondence(left, right)
    # Match a right-structure path against the left structure by swapping roles.
    backward = find_correspondence(right, left)
    path = ["s1'", "s1''", "s1'''", "s2'", "s1'"]
    matching = corresponding_path(right, left, backward, path)
    assert blocks_correspond(backward, matching)
    assert matching.left_path == tuple(path)


def test_corresponding_path_rejects_unrelated_start(fig31_pair):
    left, right = fig31_pair
    relation = find_correspondence(left, right)
    with pytest.raises(CorrespondenceError):
        corresponding_path(left, right, relation, ["s2"], right_start="s1'")
    with pytest.raises(CorrespondenceError):
        corresponding_path(left, right, relation, [])


def test_corresponding_path_detects_bogus_relations():
    left, right = stutter_pair()
    bogus = CorrespondenceRelation({("L0", "R0"): 0, ("L1", "R2"): 0})
    with pytest.raises(CorrespondenceError):
        corresponding_path(left, right, bogus, ["L0", "L1"])


def test_block_matching_properties():
    matching = BlockMatching(left_blocks=(("a",), ("b",)), right_blocks=(("x", "y"), ("z",)))
    assert matching.left_path == ("a", "b")
    assert matching.right_path == ("x", "y", "z")
    relation = CorrespondenceRelation(
        {("a", "x"): 1, ("a", "y"): 0, ("b", "z"): 0}
    )
    assert blocks_correspond(relation, matching)
    assert not blocks_correspond(CorrespondenceRelation({("a", "x"): 0}), matching)
    mismatched = BlockMatching(left_blocks=(("a",),), right_blocks=(("x",), ("z",)))
    assert not blocks_correspond(relation, mismatched)
