"""Unit tests for the SAT-based bounded model checker (``engine="bmc"``)."""

import pytest

from repro.errors import (
    FragmentError,
    InconclusiveError,
    ModelCheckingError,
)
from repro.kripke.paths import is_lasso, is_path
from repro.kripke.structure import KripkeStructure
from repro.logic.builders import (
    AF,
    AG,
    EF,
    EG,
    EU,
    atom,
    exactly_one,
    iatom,
    land,
    lnot,
    lor,
)
from repro.mc import BoundedModelChecker, ENGINE_NAMES, make_ctl_checker
from repro.mc.bitset import BitsetCTLModelChecker
from repro.mc.fairness import FairnessConstraint
from repro.mc.indexed import ICTLStarModelChecker
from repro.systems import token_ring


@pytest.fixture(scope="module")
def branching():
    """a -> {b, c}; b self-loops (p); c -> d (p, q) -> a."""
    return KripkeStructure(
        states=["a", "b", "c", "d"],
        transitions=[("a", "b"), ("a", "c"), ("b", "b"), ("c", "d"), ("d", "a")],
        labeling={"a": set(), "b": {"p"}, "c": {"q"}, "d": {"p", "q"}},
        initial_state="a",
        name="branching",
    )


class TestInvariantFragment:
    def test_true_invariant_proved(self, branching):
        checker = BoundedModelChecker(branching, bound=8)
        assert checker.check(AG(lor(atom("p"), atom("q"), lnot(atom("p")))))
        assert "induction" in checker.last_detail

    def test_violated_invariant_yields_minimal_path(self, branching):
        checker = BoundedModelChecker(branching, bound=8)
        assert not checker.check(AG(lnot(atom("q"))))
        path = checker.last_counterexample
        assert path is not None
        assert path[0] == "a"
        assert is_path(branching, path)
        assert path[-1] == "c" and len(path) == 2  # q first reachable at depth 1

    def test_verdicts_agree_with_bitset_on_invariants(self, branching):
        bitset = BitsetCTLModelChecker(branching)
        bmc = BoundedModelChecker(branching, bound=8)
        for body in [atom("p"), lnot(atom("p")), lor(atom("p"), atom("q"))]:
            for wrap in (AG, EF):
                formula = wrap(body)
                assert bmc.check(formula) == bitset.check(formula), formula

    def test_ef_witness_and_unreachability(self, branching):
        checker = BoundedModelChecker(branching, bound=8)
        assert checker.check(EF(land(atom("p"), atom("q"))))
        assert not checker.check(EF(land(atom("q"), lnot(atom("q")))))

    def test_boolean_combinations_and_negation(self, branching):
        checker = BoundedModelChecker(branching, bound=8)
        assert checker.check(land(AG(lor(atom("p"), atom("q"), lnot(atom("p")))),
                                  EF(atom("q"))))
        assert not checker.check(lnot(EF(atom("q"))))

    def test_verdicts_are_memoised(self, branching):
        checker = BoundedModelChecker(branching, bound=8)
        formula = AG(lnot(atom("q")))
        assert checker.check(formula) is False
        calls_before = checker.stats()["solve_calls"]
        assert checker.check(formula) is False  # memoised: no new SAT calls
        assert checker.stats()["solve_calls"] == calls_before
        assert checker.last_detail == "memoised verdict"


class TestLassos:
    def test_af_counterexample_is_valid_lasso(self, branching):
        checker = BoundedModelChecker(branching, bound=8)
        assert not checker.check(AF(atom("q")))  # loop a->b->b... avoids q
        lasso = checker.last_lasso
        assert lasso is not None and is_lasso(branching, lasso)
        assert all("q" not in branching.label(state) for state in lasso.positions())

    def test_eg_witness_is_valid_lasso(self, branching):
        checker = BoundedModelChecker(branching, bound=8)
        assert checker.check(EG(lnot(atom("q"))))
        lasso = checker.last_lasso
        assert is_lasso(branching, lasso)

    def test_liveness_that_holds_is_inconclusive(self, branching):
        checker = BoundedModelChecker(branching, bound=4)
        with pytest.raises(InconclusiveError):
            checker.check(AF(lor(atom("p"), atom("q"))))


class TestFragmentBoundaries:
    def test_nested_temporal_rejected(self, branching):
        checker = BoundedModelChecker(branching, bound=4)
        with pytest.raises(FragmentError):
            checker.check(AG(EF(atom("p"))))

    def test_until_rejected(self, branching):
        checker = BoundedModelChecker(branching, bound=4)
        with pytest.raises(FragmentError):
            checker.check(EU(atom("p"), atom("q")))

    def test_fairness_rejected_at_construction(self, branching):
        constraint = FairnessConstraint(conditions=(atom("p"),), name="p fair")
        with pytest.raises(FragmentError):
            BoundedModelChecker(branching, fairness=constraint)

    def test_non_initial_start_state_rejected(self, branching):
        checker = BoundedModelChecker(branching, bound=4)
        with pytest.raises(ModelCheckingError):
            checker.check(AG(atom("p")), state="b")
        # The initial state itself is accepted.
        assert not checker.check(AG(lnot(atom("q"))), state="a")

    def test_propositional_formulas_evaluate_at_initial(self, branching):
        checker = BoundedModelChecker(branching, bound=4)
        assert checker.check(lnot(atom("p")))
        assert not checker.check(atom("p"))


class TestEngineRegistration:
    def test_engine_registry(self):
        assert "bmc" in ENGINE_NAMES

    def test_make_ctl_checker_builds_bmc(self, branching):
        checker = make_ctl_checker(branching, engine="bmc", bound=7)
        assert isinstance(checker, BoundedModelChecker)
        assert checker.bound == 7
        assert checker.supports_satisfaction_sets is False

    def test_ictlstar_front_end_dispatches_check(self, ring4):
        checker = ICTLStarModelChecker(ring4, engine="bmc", bound=8)
        assert checker.check(token_ring.invariant_one_token())
        assert checker.check(token_ring.property_critical_implies_token())
        with pytest.raises(FragmentError):
            checker.satisfaction_set(token_ring.invariant_one_token())

    def test_ictlstar_bmc_agrees_with_bitset_on_ring(self, ring3):
        bmc = ICTLStarModelChecker(ring3, engine="bmc", bound=8)
        bitset = ICTLStarModelChecker(ring3, engine="bitset")
        for formula in [
            token_ring.invariant_one_token(),
            token_ring.property_critical_implies_token(),
        ]:
            assert bmc.check(formula) == bitset.check(formula)


class TestRingAcceptance:
    def test_seeded_ring_bug_found_and_matches_bitset_oracle(self):
        """The headline acceptance check at r <= 8 (here 6, well inside it)."""
        from repro.mc import counterexample_ag

        size = 6
        explicit = token_ring.build_token_ring(size, buggy=True)
        free = token_ring.symbolic_token_ring(size, buggy=True, domain="free")
        checker = BoundedModelChecker(free, bound=8)
        assert not checker.check(token_ring.invariant_one_token())
        path = checker.last_counterexample
        assert path is not None and path[0] == explicit.initial_state
        assert is_path(explicit, path)
        assert not explicit.atom_holds(path[-1], exactly_one("t"))
        oracle = counterexample_ag(explicit, exactly_one("t"), engine="bitset")
        assert oracle is not None and len(oracle) == len(path)

    def test_kinduction_proves_one_token_without_reachability(self):
        """``AG Θ_i t_i`` proved on the *free* domain — no fixpoint, no ceiling."""
        free = token_ring.symbolic_token_ring(8, domain="free")
        checker = BoundedModelChecker(free, bound=8)
        assert checker.check(token_ring.invariant_one_token())
        assert checker.last_detail == "proved by 1-induction"
        stats = checker.stats()
        assert stats["solve_calls"] >= 2  # one base query, one induction query

    def test_prove_invariant_reports_induction_length(self):
        free = token_ring.symbolic_token_ring(5, domain="free")
        checker = BoundedModelChecker(free, bound=8)
        assert checker.prove_invariant(exactly_one("t")) == 1

    def test_af_counterexample_on_unfair_ring(self, ring3):
        """The E11 story replayed through SAT: AF t_3 fails without fairness."""
        checker = BoundedModelChecker(ring3, bound=10)
        assert not checker.check(AF(iatom("t", 3)))
        lasso = checker.last_lasso
        assert is_lasso(ring3, lasso)
        from repro.kripke.structure import IndexedProp

        assert all(
            IndexedProp("t", 3) not in ring3.label(state) for state in lasso.positions()
        )

    def test_shares_symbolic_encoding_with_bdd_engine(self, ring3):
        from repro.kripke.symbolic import symbolic_structure

        checker = BoundedModelChecker(ring3, bound=4)
        assert checker.symbolic is symbolic_structure(ring3)
