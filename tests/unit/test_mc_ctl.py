"""Unit tests for the CTL labelling model checker."""

import pytest

from repro.errors import FragmentError, ValidationError
from repro.kripke.structure import KripkeStructure
from repro.logic.builders import (
    AF,
    AG,
    AU,
    AX,
    EF,
    EG,
    EU,
    EX,
    R,
    W,
    A,
    E,
    atom,
    false,
    iff,
    implies,
    index_forall,
    iatom,
    land,
    lnot,
    lor,
    true,
)
from repro.mc.ctl import CTLModelChecker, check, satisfaction_set


@pytest.fixture(scope="module")
def mutex_like():
    """A tiny mutual-exclusion-flavoured structure.

    ``idle → try → crit → idle`` with a self-loop on ``try`` (the process may
    wait arbitrarily long but can always still proceed).
    """
    return KripkeStructure(
        states=["idle", "try", "crit"],
        transitions=[
            ("idle", "try"),
            ("try", "try"),
            ("try", "crit"),
            ("crit", "idle"),
        ],
        labeling={"idle": {"n"}, "try": {"t"}, "crit": {"c"}},
        initial_state="idle",
    )


def test_atoms_and_boolean_connectives(mutex_like):
    checker = CTLModelChecker(mutex_like)
    assert checker.satisfaction_set(atom("n")) == frozenset({"idle"})
    assert checker.satisfaction_set(lnot(atom("n"))) == frozenset({"try", "crit"})
    assert checker.satisfaction_set(lor(atom("n"), atom("c"))) == frozenset({"idle", "crit"})
    assert checker.satisfaction_set(land(atom("n"), atom("c"))) == frozenset()
    assert checker.satisfaction_set(true()) == mutex_like.states
    assert checker.satisfaction_set(false()) == frozenset()
    assert checker.satisfaction_set(implies(atom("c"), atom("c"))) == mutex_like.states
    assert checker.satisfaction_set(iff(atom("n"), lnot(atom("n")))) == frozenset()


def test_ex_and_ax(mutex_like):
    checker = CTLModelChecker(mutex_like)
    assert checker.satisfaction_set(EX(atom("c"))) == frozenset({"try"})
    assert checker.satisfaction_set(AX(atom("t"))) == frozenset({"idle"})
    assert checker.satisfaction_set(AX(lor(atom("t"), atom("c")))) == frozenset({"idle", "try"})


def test_ef_and_af(mutex_like):
    checker = CTLModelChecker(mutex_like)
    # Everything can reach the critical section.
    assert checker.satisfaction_set(EF(atom("c"))) == mutex_like.states
    # But it is not inevitable (the try state can loop forever).
    assert checker.satisfaction_set(AF(atom("c"))) == frozenset({"crit"})


def test_eg_and_ag(mutex_like):
    checker = CTLModelChecker(mutex_like)
    assert checker.satisfaction_set(EG(atom("t"))) == frozenset({"try"})
    assert checker.satisfaction_set(EG(lnot(atom("c")))) == frozenset({"idle", "try"})
    assert checker.satisfaction_set(AG(lor(atom("n"), lor(atom("t"), atom("c"))))) == mutex_like.states
    assert checker.satisfaction_set(AG(atom("t"))) == frozenset()


def test_eu_and_au(mutex_like):
    checker = CTLModelChecker(mutex_like)
    assert checker.satisfaction_set(EU(atom("t"), atom("c"))) == frozenset({"try", "crit"})
    # A[t U c] fails on the try state because of the self-loop path.
    assert checker.satisfaction_set(AU(atom("t"), atom("c"))) == frozenset({"crit"})
    assert checker.satisfaction_set(AU(true(), atom("c"))) == checker.satisfaction_set(AF(atom("c")))


def test_release_and_weak_until(mutex_like):
    checker = CTLModelChecker(mutex_like)
    # E[false R ¬c] == EG ¬c
    assert checker.satisfaction_set(E(R(false(), lnot(atom("c"))))) == checker.satisfaction_set(
        EG(lnot(atom("c")))
    )
    # A[t W c]: t holds unless/until c; true in try and crit, false in idle.
    assert checker.satisfaction_set(A(W(atom("t"), atom("c")))) == frozenset({"try", "crit"})
    assert checker.satisfaction_set(E(W(atom("t"), atom("c")))) == frozenset({"try", "crit"})


def test_check_defaults_to_initial_state(mutex_like):
    assert check(mutex_like, EF(atom("c")))
    assert not check(mutex_like, atom("c"))
    assert check(mutex_like, atom("c"), state="crit")


def test_satisfaction_set_module_helper(mutex_like):
    assert satisfaction_set(mutex_like, atom("t")) == frozenset({"try"})


def test_results_are_memoised(mutex_like):
    checker = CTLModelChecker(mutex_like)
    first = checker.satisfaction_set(EF(atom("c")))
    second = checker.satisfaction_set(EF(atom("c")))
    assert first is second


def test_rejects_non_total_structures():
    partial = KripkeStructure(["a", "b"], [("a", "b")], {}, "a")
    with pytest.raises(ValidationError):
        CTLModelChecker(partial)


def test_rejects_non_ctl_formulas(mutex_like):
    checker = CTLModelChecker(mutex_like)
    from repro.logic.builders import F, G

    with pytest.raises(FragmentError):
        checker.satisfaction_set(E(land(F(atom("c")), G(atom("t")))))
    with pytest.raises(FragmentError):
        checker.satisfaction_set(E(atom("c")))


def test_rejects_index_quantifiers(mutex_like):
    checker = CTLModelChecker(mutex_like)
    with pytest.raises(FragmentError):
        checker.satisfaction_set(index_forall("i", AG(iatom("c", "i"))))


def test_ag_implies_af_on_ring(ring2):
    checker = CTLModelChecker(ring2)
    formula = AG(implies(iatom("d", 1), AF(iatom("c", 1))))
    assert checker.check(formula)
    formula2 = AG(implies(iatom("d", 2), AF(iatom("c", 2))))
    assert checker.check(formula2)


def test_duality_af_equals_not_eg_not(mutex_like):
    checker = CTLModelChecker(mutex_like)
    for prop in ("n", "t", "c"):
        af = checker.satisfaction_set(AF(atom(prop)))
        not_eg_not = mutex_like.states - checker.satisfaction_set(EG(lnot(atom(prop))))
        assert af == not_eg_not


def test_duality_ag_equals_not_ef_not(mutex_like):
    checker = CTLModelChecker(mutex_like)
    for prop in ("n", "t", "c"):
        ag = checker.satisfaction_set(AG(atom(prop)))
        not_ef_not = mutex_like.states - checker.satisfaction_set(EF(lnot(atom(prop))))
        assert ag == not_ef_not
