"""Unit tests for fragment classification and the ICTL* restrictions."""

import pytest

from repro.errors import FragmentError, RestrictionError
from repro.logic.builders import (
    AF,
    AG,
    AU,
    EF,
    EG,
    EU,
    EX,
    E,
    F,
    G,
    U,
    X,
    atom,
    exactly_one,
    iatom,
    implies,
    index_exists,
    index_forall,
    land,
    lnot,
    lor,
)
from repro.logic.parser import parse
from repro.logic.syntax import (
    assert_closed,
    assert_ctl,
    assert_next_free,
    assert_restricted_ictl,
    is_closed,
    is_ctl,
    is_ltl_path_formula,
    is_next_free,
    is_path_formula,
    is_restricted_ictl,
    is_state_formula,
    restriction_violations,
    uses_indexing,
)


def test_atoms_are_state_formulas():
    assert is_state_formula(atom("p"))
    assert is_state_formula(iatom("c", "i"))
    assert is_state_formula(exactly_one("t"))


def test_temporal_operators_are_path_formulas_not_state_formulas():
    assert not is_state_formula(U(atom("p"), atom("q")))
    assert is_path_formula(U(atom("p"), atom("q")))
    assert not is_state_formula(F(atom("p")))
    assert is_path_formula(G(atom("p")))


def test_path_quantified_formulas_are_state_formulas():
    assert is_state_formula(E(U(atom("p"), atom("q"))))
    assert is_state_formula(AG(atom("p")))


def test_boolean_combination_of_state_formulas_is_state_formula():
    assert is_state_formula(land(atom("p"), AG(atom("q"))))
    assert is_state_formula(lnot(lor(atom("p"), atom("q"))))


def test_next_freeness():
    assert is_next_free(AG(implies(atom("p"), AF(atom("q")))))
    assert not is_next_free(EX(atom("p")))
    assert_next_free(AG(atom("p")))
    with pytest.raises(FragmentError):
        assert_next_free(AG(X(atom("p"))))


def test_closedness_requires_bound_variables_and_no_concrete_indices():
    assert is_closed(index_forall("i", AG(iatom("c", "i"))))
    assert not is_closed(AG(iatom("c", "i")))
    assert not is_closed(AG(iatom("c", 1)))
    assert is_closed(AG(atom("p")))
    with pytest.raises(FragmentError):
        assert_closed(AG(iatom("c", 3)))


def test_is_ctl_accepts_standard_ctl_shapes():
    assert is_ctl(AG(implies(atom("p"), AF(atom("q")))))
    assert is_ctl(EU(atom("p"), atom("q")))
    assert is_ctl(AU(atom("p"), EG(atom("q"))))
    assert is_ctl(index_forall("i", AG(iatom("c", "i"))))


def test_is_ctl_rejects_path_formula_nesting():
    # E(F p & G q) is CTL* but not CTL.
    assert not is_ctl(E(land(F(atom("p")), G(atom("q")))))
    assert not is_ctl(E(G(F(atom("p")))))
    with pytest.raises(FragmentError):
        assert_ctl(E(G(F(atom("p")))))


def test_assert_ctl_accepts_section5_properties():
    from repro.systems import token_ring

    for formula in token_ring.ring_properties().values():
        assert is_ctl(formula)


def test_is_ltl_path_formula():
    assert is_ltl_path_formula(U(atom("p"), atom("q")))
    assert is_ltl_path_formula(G(F(atom("p"))))
    assert not is_ltl_path_formula(E(F(atom("p"))))
    assert not is_ltl_path_formula(index_exists("i", iatom("c", "i")))


def test_uses_indexing():
    assert uses_indexing(index_forall("i", AG(iatom("c", "i"))))
    assert uses_indexing(AG(exactly_one("t")))
    assert not uses_indexing(AG(atom("p")))


def test_restriction_accepts_the_section5_properties():
    for text in [
        "forall i . AG(d[i] -> AF c[i])",
        "forall i . AG(c[i] -> t[i])",
        "forall i . AG(d[i] -> A(d[i] U t[i]))",
        "!(exists i . EF(!d[i] & !t[i] & E(!d[i] U t[i])))",
        "AG one t",
    ]:
        formula = parse(text)
        assert is_restricted_ictl(formula), text


def test_restriction_rejects_nested_quantifiers():
    nested = index_exists("i", EF(land(iatom("B", "i"), index_exists("j", iatom("A", "j")))))
    violations = restriction_violations(nested)
    assert any("nested" in violation for violation in violations)
    with pytest.raises(RestrictionError):
        assert_restricted_ictl(nested)


def test_restriction_rejects_quantifier_inside_until_operand():
    bad = E(U(index_exists("i", iatom("a", "i")), atom("p")))
    assert not is_restricted_ictl(bad)


def test_restriction_rejects_nexttime():
    bad = index_forall("i", AG(implies(iatom("t", "i"), EX(iatom("t", "i")))))
    violations = restriction_violations(bad)
    assert any("next-time" in violation for violation in violations)


def test_restriction_rejects_open_formulas():
    open_formula = AG(iatom("c", "i"))
    assert not is_restricted_ictl(open_formula)


def test_restriction_rejects_path_formulas():
    assert restriction_violations(U(atom("p"), atom("q")))


def test_fig41_counting_formula_is_rejected_beyond_depth_one():
    from repro.systems import figures

    assert is_restricted_ictl(figures.fig41_counting_formula(1))
    assert not is_restricted_ictl(figures.fig41_counting_formula(2))
    assert not is_restricted_ictl(figures.fig41_counting_formula(3))


def test_distinguishing_formula_is_restricted():
    from repro.systems import token_ring

    assert is_restricted_ictl(token_ring.distinguishing_formula())
