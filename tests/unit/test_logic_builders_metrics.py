"""Unit tests for the formula builders and the structural metrics."""

from repro.logic.ast import (
    And,
    Atom,
    Exists,
    FalseLiteral,
    Finally,
    ForAll,
    Globally,
    IndexExists,
    IndexForall,
    IndexedAtom,
    Next,
    Not,
    Or,
    TrueLiteral,
    Until,
)
from repro.logic.builders import (
    AF,
    AG,
    AU,
    AX,
    EF,
    EG,
    EU,
    EX,
    atom,
    exactly_one,
    false,
    iatom,
    iff,
    implies,
    index_exists,
    index_forall,
    land,
    lnot,
    lor,
    true,
)
from repro.logic.metrics import (
    formula_size,
    index_nesting_depth,
    index_quantifier_count,
    temporal_depth,
)


def test_constant_builders():
    assert true() == TrueLiteral()
    assert false() == FalseLiteral()


def test_ctl_shortcut_builders():
    p = atom("p")
    assert EX(p) == Exists(Next(p))
    assert EF(p) == Exists(Finally(p))
    assert EG(p) == Exists(Globally(p))
    assert AX(p) == ForAll(Next(p))
    assert AF(p) == ForAll(Finally(p))
    assert AG(p) == ForAll(Globally(p))
    assert EU(p, atom("q")) == Exists(Until(p, Atom("q")))
    assert AU(p, atom("q")) == ForAll(Until(p, Atom("q")))


def test_nary_conjunction_and_disjunction():
    p, q, r = atom("p"), atom("q"), atom("r")
    assert land(p, q, r) == And(p, And(q, r))
    assert lor(p, q) == Or(p, q)
    assert land(p) == p
    assert lor() == FalseLiteral()
    assert land() == TrueLiteral()


def test_quantifier_builders():
    body = AG(iatom("c", "i"))
    assert index_forall("i", body) == IndexForall("i", body)
    assert index_exists("i", body) == IndexExists("i", body)


def test_negation_and_implication_builders():
    assert lnot(atom("p")) == Not(Atom("p"))
    assert implies(atom("p"), atom("q")).left == Atom("p")
    assert iff(atom("p"), atom("q")).right == Atom("q")


def test_indexed_builders():
    assert iatom("c", 3) == IndexedAtom("c", 3)
    assert exactly_one("t").name == "t"


def test_formula_size_counts_nodes():
    assert formula_size(atom("p")) == 1
    assert formula_size(land(atom("p"), atom("q"))) == 3
    assert formula_size(AG(atom("p"))) == 3  # ForAll, Globally, Atom


def test_temporal_depth():
    assert temporal_depth(atom("p")) == 0
    assert temporal_depth(AG(atom("p"))) == 1
    assert temporal_depth(AG(implies(atom("p"), AF(atom("q"))))) == 2
    assert temporal_depth(EU(atom("p"), EF(atom("q")))) == 2


def test_index_quantifier_count_and_nesting_depth():
    flat = land(
        index_forall("i", AG(iatom("c", "i"))), index_exists("j", EF(iatom("d", "j")))
    )
    assert index_quantifier_count(flat) == 2
    assert index_nesting_depth(flat) == 1

    nested = index_exists("i", EF(land(iatom("B", "i"), index_exists("j", iatom("A", "j")))))
    assert index_quantifier_count(nested) == 2
    assert index_nesting_depth(nested) == 2

    assert index_nesting_depth(AG(atom("p"))) == 0


def test_fig41_formula_depth_matches_requested_depth():
    from repro.systems import figures

    for depth in range(1, 5):
        assert index_nesting_depth(figures.fig41_counting_formula(depth)) == depth
