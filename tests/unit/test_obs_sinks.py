"""Unit tests for the span/metric exporters.

Round-trips each format through its consumer: JSONL lines must parse
back to the span dicts, the Chrome trace document must satisfy the
trace-event schema Perfetto loads (``traceEvents`` array of ``"ph": "X"``
complete events with microsecond ``ts``/``dur`` and JSON-clean ``args``),
and the summary table must aggregate per span name.
"""

from __future__ import annotations

import io
import json
import os

from repro.obs.metrics import MetricsRegistry
from repro.obs.sinks import (
    ChromeTraceSink,
    JsonlSink,
    MemorySink,
    SummarySink,
    write_metrics_jsonl,
)
from repro.obs.trace import event, recording, span


class FakeClock:
    def __init__(self, step_ns: int = 1000):
        self.now = 0
        self.step = step_ns

    def __call__(self) -> int:
        self.now += self.step
        return self.now


def _trace_some_spans(*sinks):
    with recording(sinks=list(sinks), clock_ns=FakeClock()):
        with span("mc.check", engine="bdd"):
            with span("bdd.fixpoint.eu") as sp:
                sp.set(rounds=3)
            event("bdd.gc", reclaimed=17)


def test_jsonl_sink_round_trips_spans_and_events(tmp_path):
    path = tmp_path / "trace.jsonl"
    _trace_some_spans(JsonlSink(path))
    rows = [json.loads(line) for line in path.read_text().splitlines()]
    assert [row["kind"] for row in rows] == ["span", "event", "span"]
    inner, gc, outer = rows
    assert inner["name"] == "bdd.fixpoint.eu"
    assert inner["attrs"] == {"rounds": 3}
    assert inner["parent_id"] == outer["span_id"]
    assert gc["name"] == "bdd.gc"
    assert gc["attrs"] == {"reclaimed": 17}
    assert outer["name"] == "mc.check"
    assert outer["dur_ns"] > inner["dur_ns"] > 0


def test_chrome_trace_sink_emits_perfetto_loadable_document(tmp_path):
    path = tmp_path / "trace.json"
    _trace_some_spans(ChromeTraceSink(path))
    document = json.loads(path.read_text())
    # The trace-event schema Perfetto/chrome://tracing loads.
    assert set(document) == {"traceEvents", "displayTimeUnit"}
    assert document["displayTimeUnit"] == "ms"
    events = document["traceEvents"]
    timed = [e for e in events if e["ph"] != "M"]
    assert [e["name"] for e in timed] == ["mc.check", "bdd.fixpoint.eu", "bdd.gc"]
    complete = [e for e in timed if e["ph"] == "X"]
    for e in complete:
        assert set(e) == {"name", "cat", "ph", "ts", "dur", "pid", "tid", "args"}
        assert e["ts"] >= 0 and e["dur"] > 0
        # This process's events land on this process's pid, resolved per
        # event (never captured at sink construction).
        assert e["pid"] == os.getpid()
    [instant] = [e for e in timed if e["ph"] == "i"]
    assert instant["s"] == "t"
    assert instant["args"] == {"reclaimed": 17}
    # Events are sorted by timestamp and nested spans sit inside their
    # parent's [ts, ts+dur) interval, which is what renders the flame graph.
    outer, inner = complete
    assert outer["ts"] <= inner["ts"]
    assert inner["ts"] + inner["dur"] <= outer["ts"] + outer["dur"]
    # The exact span tree is embedded in args, so analysis tools never
    # have to infer nesting from interval containment.
    assert inner["args"]["parent_id"] == outer["args"]["span_id"]


def test_chrome_trace_sink_accepts_caller_owned_stream():
    stream = io.StringIO()
    _trace_some_spans(ChromeTraceSink(stream))
    document = json.loads(stream.getvalue())
    assert len([e for e in document["traceEvents"] if e["ph"] != "M"]) == 3
    stream.write("")  # stream was left open for the caller


def test_chrome_trace_args_are_json_clean(tmp_path):
    path = tmp_path / "trace.json"
    sink = ChromeTraceSink(path)
    with recording(sinks=[sink], clock_ns=FakeClock()):
        with span("weird") as sp:
            sp.set(formula=frozenset({1}), pair=(1, 2))
    document = json.loads(path.read_text())
    [event_] = [e for e in document["traceEvents"] if e["ph"] == "X"]
    args = event_["args"]
    assert args["pair"] == [1, 2]
    assert isinstance(args["formula"], str)  # repr'd, not a crash


class _RemoteSpan:
    """A record shaped like collect.RemoteSpanRecord (pid + lane carried)."""

    def __init__(self, span_id, parent_id, name, start_ns, end_ns, pid, lane):
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.start_ns = start_ns
        self.end_ns = end_ns
        self.duration_ns = end_ns - start_ns
        self.attrs = {"worker": lane}
        self.status = "ok"
        self.pid = pid
        self.lane = lane


def test_chrome_trace_sink_renders_worker_lanes():
    stream = io.StringIO()
    sink = ChromeTraceSink(stream)
    with recording(sinks=[sink], clock_ns=FakeClock()):
        with span("portfolio.race"):
            sink.on_span(_RemoteSpan(901, 1, "mc.check", 100, 900, 4242, "bmc"))
            sink.on_span(_RemoteSpan(902, 1, "mc.check", 100, 800, 4243, "bdd"))
    document = json.loads(stream.getvalue())
    events = document["traceEvents"]
    spans = {e["args"].get("span_id"): e for e in events if e["ph"] == "X"}
    assert spans[901]["pid"] == 4242
    assert spans[902]["pid"] == 4243
    names = {
        e["pid"]: e["args"]["name"]
        for e in events
        if e["ph"] == "M" and e["name"] == "process_name"
    }
    assert names[4242] == "worker:bmc"
    assert names[4243] == "worker:bdd"
    assert names[os.getpid()] == "coordinator"
    threads = {
        e["pid"]: e["args"]["name"]
        for e in events
        if e["ph"] == "M" and e["name"] == "thread_name"
    }
    assert threads[4242] == "bmc"
    # The coordinator lane sorts first.
    order = {
        e["pid"]: e["args"]["sort_index"]
        for e in events
        if e["ph"] == "M" and e["name"] == "process_sort_index"
    }
    assert order[os.getpid()] == 0
    assert order[4242] > 0 and order[4243] > 0


def test_chrome_trace_sink_marks_non_ok_status():
    stream = io.StringIO()
    sink = ChromeTraceSink(stream)
    with recording(sinks=[sink], clock_ns=FakeClock()):
        try:
            with span("doomed"):
                raise ValueError("boom")
        except ValueError:
            pass
    document = json.loads(stream.getvalue())
    [event_] = [e for e in document["traceEvents"] if e["ph"] == "X"]
    assert event_["args"]["status"] == "error:ValueError"


def test_perfetto_sink_is_the_chrome_trace_sink():
    from repro.obs.sinks import PerfettoSink

    assert PerfettoSink is ChromeTraceSink


def test_summary_sink_aggregates_per_name():
    sink = SummarySink(stream=io.StringIO())
    with recording(sinks=[sink], clock_ns=FakeClock()):
        with span("sat.solve"):
            pass
        with span("sat.solve"):
            pass
        with span("ic3.frame"):
            pass
    table = sink.format_table()
    lines = table.splitlines()
    assert "span" in lines[0] and "count" in lines[0]
    solve_row = next(line for line in lines if line.startswith("sat.solve"))
    assert " 2 " in solve_row


def test_memory_sink_collects_and_closes():
    sink = MemorySink()
    _trace_some_spans(sink)
    assert [record.name for record in sink.spans] == ["bdd.fixpoint.eu", "mc.check"]
    assert len(sink.events) == 1
    assert sink.closed


def test_write_metrics_jsonl_merges_run_identity(tmp_path):
    registry = MetricsRegistry()
    registry.counter("mc.checks", engine="ic3").inc(2)
    registry.gauge("sat.conflicts", engine="ic3").set(41)
    path = tmp_path / "metrics.jsonl"
    written = write_metrics_jsonl(
        registry, path, extra={"system": "mutex", "size": 4}
    )
    rows = [json.loads(line) for line in path.read_text().splitlines()]
    assert written == len(rows) == 2
    for row in rows:
        assert row["system"] == "mutex"
        assert row["size"] == 4
        assert row["labels"] == {"engine": "ic3"}
    assert {row["name"]: row["value"] for row in rows} == {
        "mc.checks": 2,
        "sat.conflicts": 41,
    }


def test_write_metrics_jsonl_to_stream_without_extra():
    registry = MetricsRegistry()
    registry.histogram("mc.fixpoint.size").observe(3)
    stream = io.StringIO()
    assert write_metrics_jsonl(registry, stream) == 1
    [row] = [json.loads(line) for line in stream.getvalue().splitlines()]
    assert row["kind"] == "histogram"
    assert row["value"]["buckets"] == {"4": 1}
