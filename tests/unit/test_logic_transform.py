"""Unit tests for formula transformations (expansion, NNF, substitution, instantiation)."""

import pytest

from repro.errors import FormulaError
from repro.logic.ast import (
    And,
    Atom,
    Exists,
    Finally,
    ForAll,
    Globally,
    Iff,
    Implies,
    IndexExists,
    IndexForall,
    IndexedAtom,
    Not,
    Or,
    Release,
    TrueLiteral,
    Until,
    WeakUntil,
    walk,
)
from repro.logic.transform import (
    atoms,
    bound_index_variables,
    expand,
    free_index_variables,
    indexed_atom_names,
    instantiate_quantifiers,
    negation_normal_form,
    substitute_index,
)

_SUGAR = (Implies, Iff, ForAll, Finally, Globally, Release, WeakUntil, IndexForall)


def test_expand_removes_all_derived_operators():
    formula = IndexForall(
        "i",
        ForAll(Globally(Implies(IndexedAtom("d", "i"), ForAll(Finally(IndexedAtom("c", "i")))))),
    )
    core = expand(formula)
    assert not any(isinstance(node, _SUGAR) for node in walk(core))


def test_expand_implies():
    assert expand(Implies(Atom("p"), Atom("q"))) == Or(Not(Atom("p")), Atom("q"))


def test_expand_forall_path_quantifier():
    assert expand(ForAll(Atom("p"))) == Not(Exists(Not(Atom("p"))))


def test_expand_finally_and_globally():
    assert expand(Finally(Atom("p"))) == Until(TrueLiteral(), Atom("p"))
    assert expand(Globally(Atom("p"))) == Not(Until(TrueLiteral(), Not(Atom("p"))))


def test_expand_index_forall_is_not_exists_not():
    expanded = expand(IndexForall("i", IndexedAtom("c", "i")))
    assert expanded == Not(IndexExists("i", Not(IndexedAtom("c", "i"))))


def test_expand_is_idempotent():
    formula = ForAll(Globally(Implies(Atom("p"), ForAll(Finally(Atom("q"))))))
    assert expand(expand(formula)) == expand(formula)


def test_nnf_pushes_negation_to_atoms():
    formula = Not(And(Atom("p"), Or(Atom("q"), Not(Atom("r")))))
    nnf = negation_normal_form(formula)
    for node in walk(nnf):
        if isinstance(node, Not):
            assert isinstance(node.operand, Atom)


def test_nnf_dualises_temporal_operators():
    assert negation_normal_form(Not(Finally(Atom("p")))) == Globally(Not(Atom("p")))
    assert negation_normal_form(Not(Globally(Atom("p")))) == Finally(Not(Atom("p")))
    assert negation_normal_form(Not(Until(Atom("p"), Atom("q")))) == Release(
        Not(Atom("p")), Not(Atom("q"))
    )


def test_nnf_dualises_path_and_index_quantifiers():
    assert negation_normal_form(Not(Exists(Atom("p")))) == ForAll(Not(Atom("p")))
    assert negation_normal_form(Not(IndexExists("i", IndexedAtom("c", "i")))) == IndexForall(
        "i", Not(IndexedAtom("c", "i"))
    )


def test_nnf_eliminates_double_negation():
    assert negation_normal_form(Not(Not(Atom("p")))) == Atom("p")


def test_substitute_index_replaces_free_occurrences():
    formula = And(IndexedAtom("c", "i"), IndexedAtom("d", "j"))
    result = substitute_index(formula, "i", 4)
    assert result == And(IndexedAtom("c", 4), IndexedAtom("d", "j"))


def test_substitute_index_respects_shadowing():
    formula = And(IndexedAtom("c", "i"), IndexExists("i", IndexedAtom("c", "i")))
    result = substitute_index(formula, "i", 2)
    assert result == And(IndexedAtom("c", 2), IndexExists("i", IndexedAtom("c", "i")))


def test_free_and_bound_index_variables():
    formula = IndexExists("i", And(IndexedAtom("c", "i"), IndexedAtom("d", "j")))
    assert free_index_variables(formula) == {"j"}
    assert bound_index_variables(formula) == {"i"}


def test_free_index_variables_of_closed_formula_is_empty():
    formula = IndexForall("i", IndexedAtom("c", "i"))
    assert free_index_variables(formula) == set()


def test_atoms_and_indexed_atom_names():
    formula = And(Atom("ready"), IndexExists("i", IndexedAtom("c", "i")))
    assert atoms(formula) == {"ready"}
    assert indexed_atom_names(formula) == {"c"}


def test_instantiate_quantifiers_exists_becomes_disjunction():
    formula = IndexExists("i", IndexedAtom("c", "i"))
    instantiated = instantiate_quantifiers(formula, [1, 2])
    assert instantiated == Or(IndexedAtom("c", 1), IndexedAtom("c", 2))


def test_instantiate_quantifiers_forall_becomes_conjunction():
    formula = IndexForall("i", IndexedAtom("c", "i"))
    instantiated = instantiate_quantifiers(formula, [1, 2, 3])
    assert instantiated == And(
        IndexedAtom("c", 1), And(IndexedAtom("c", 2), IndexedAtom("c", 3))
    )


def test_instantiate_quantifiers_single_value_has_no_connective():
    formula = IndexExists("i", IndexedAtom("c", "i"))
    assert instantiate_quantifiers(formula, [7]) == IndexedAtom("c", 7)


def test_instantiate_quantifiers_handles_nesting():
    inner = IndexExists("j", And(IndexedAtom("a", "i"), IndexedAtom("b", "j")))
    formula = IndexExists("i", inner)
    instantiated = instantiate_quantifiers(formula, [1, 2])
    leaves = [node for node in walk(instantiated) if isinstance(node, IndexedAtom)]
    assert all(isinstance(leaf.index, int) for leaf in leaves)


def test_instantiate_quantifiers_rejects_empty_index_set():
    with pytest.raises(FormulaError):
        instantiate_quantifiers(IndexExists("i", IndexedAtom("c", "i")), [])


def test_instantiate_leaves_concrete_atoms_alone():
    formula = And(IndexedAtom("c", 5), Atom("p"))
    assert instantiate_quantifiers(formula, [1, 2]) == formula
