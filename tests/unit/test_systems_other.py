"""Unit tests for the figure examples, the round-robin scheduler, and the barrier family."""

import pytest

from repro.kripke.structure import IndexedProp
from repro.mc.ctlstar import CTLStarModelChecker
from repro.mc.indexed import ICTLStarModelChecker
from repro.systems import barrier, figures, round_robin


# ---------------------------------------------------------------------------
# Fig. 3.1
# ---------------------------------------------------------------------------


def test_fig31_structures_have_the_described_shape(fig31_pair):
    left, right = fig31_pair
    assert left.num_states == 2
    assert right.num_states == 4
    assert left.label("s1") == frozenset({"p"})
    assert right.label("s1'") == frozenset({"p"})
    assert right.label("s2'") == frozenset({"q"})
    assert left.is_total() and right.is_total()


def test_fig31_structures_satisfy_the_same_next_free_formulas(fig31_pair):
    from repro.logic.parser import parse

    left, right = fig31_pair
    for text in ["AG(p | q)", "AG AF q", "AG(p -> A(p U q))", "E G F p"]:
        formula = parse(text)
        assert CTLStarModelChecker(left).check(formula) == CTLStarModelChecker(right).check(formula)


# ---------------------------------------------------------------------------
# Fig. 4.1
# ---------------------------------------------------------------------------


def test_fig41_network_size():
    assert figures.fig41_network(1).num_states == 2
    assert figures.fig41_network(3).num_states == 8


def test_fig41_counting_formula_counts_processes():
    for size in (1, 2, 3):
        checker = ICTLStarModelChecker(figures.fig41_network(size), enforce_restrictions=False)
        for depth in (1, 2, 3, 4):
            expected = size >= depth
            assert checker.check(figures.fig41_counting_formula(depth)) == expected


def test_fig41_counting_formula_rejects_bad_depth():
    with pytest.raises(ValueError):
        figures.fig41_counting_formula(0)


def test_fig41_once_b_always_b():
    from repro.logic.parser import parse

    network = figures.fig41_network(2)
    checker = ICTLStarModelChecker(network, enforce_restrictions=False)
    assert checker.check(parse("AG(B[1] -> AG B[1])"))
    assert checker.check(parse("AG(B[2] -> !EF A[2])"))


# ---------------------------------------------------------------------------
# The circulating ring and the next-time counting example
# ---------------------------------------------------------------------------


def test_circulating_ring_is_a_cycle():
    ring = figures.circulating_token_ring(4)
    assert ring.num_states == 4
    assert all(len(ring.successors(state)) == 1 for state in ring.states)
    assert IndexedProp("t", 1) in ring.label(1)


def test_circulating_ring_validates_size():
    with pytest.raises(ValueError):
        figures.circulating_token_ring(0)


def test_nexttime_counting_formula_counts_the_ring():
    formula = figures.nexttime_counting_formula(3)
    results = {}
    for size in (1, 2, 3, 4, 5, 6):
        ring = figures.circulating_token_ring(size)
        checker = ICTLStarModelChecker(ring, enforce_restrictions=False)
        results[size] = checker.check(formula)
    assert results == {1: True, 2: False, 3: True, 4: False, 5: False, 6: False}


def test_nexttime_counting_formula_uses_next():
    from repro.logic.syntax import is_next_free, is_restricted_ictl

    formula = figures.nexttime_counting_formula(3)
    assert not is_next_free(formula)
    assert not is_restricted_ictl(formula)


# ---------------------------------------------------------------------------
# Round robin
# ---------------------------------------------------------------------------


def test_round_robin_state_count(round_robin2, round_robin4):
    assert round_robin2.num_states == 4
    assert round_robin4.num_states == 8  # 2·n deterministic cycle


def test_round_robin_properties_hold_at_every_size(round_robin2, round_robin4):
    for structure in (round_robin2, round_robin4):
        checker = ICTLStarModelChecker(structure)
        for name, formula in round_robin.round_robin_properties().items():
            assert checker.check(formula), name


def test_round_robin_properties_are_restricted():
    from repro.logic.syntax import is_restricted_ictl

    assert all(is_restricted_ictl(f) for f in round_robin.round_robin_properties().values())


def test_round_robin_rejects_bad_size():
    with pytest.raises(ValueError):
        round_robin.build_round_robin(0)


def test_round_robin_token_labels_follow_the_shared_variable(round_robin2):
    for state in round_robin2.states:
        shared, _locals = state
        assert IndexedProp("t", shared) in round_robin2.label(state)


# ---------------------------------------------------------------------------
# Barrier
# ---------------------------------------------------------------------------


def test_barrier_state_count(barrier2, barrier3):
    assert barrier2.num_states == 4
    assert barrier3.num_states == 8
    assert barrier2.is_total() and barrier3.is_total()


def test_barrier_release_is_a_broadcast(barrier2):
    all_waiting = (None, ("waiting", "waiting"))
    assert barrier2.successors(all_waiting) == frozenset({(None, ("working", "working"))})


def test_barrier_properties_hold_at_every_size(barrier2, barrier3):
    for structure in (barrier2, barrier3):
        checker = ICTLStarModelChecker(structure)
        for name, formula in barrier.barrier_properties().items():
            assert checker.check(formula), name


def test_barrier_properties_are_restricted():
    from repro.logic.syntax import is_restricted_ictl

    assert all(is_restricted_ictl(f) for f in barrier.barrier_properties().values())


def test_barrier_rejects_bad_size():
    with pytest.raises(ValueError):
        barrier.build_barrier(0)
