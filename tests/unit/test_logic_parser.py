"""Unit tests for the formula parser and printer."""

import pytest

from repro.errors import ParseError
from repro.logic.ast import (
    And,
    Atom,
    ExactlyOne,
    Exists,
    FalseLiteral,
    Finally,
    ForAll,
    Globally,
    Iff,
    Implies,
    IndexExists,
    IndexForall,
    IndexedAtom,
    Next,
    Not,
    Or,
    Release,
    TrueLiteral,
    Until,
    WeakUntil,
)
from repro.logic.parser import parse, tokenize
from repro.logic.printer import format_formula


def test_parse_plain_atom():
    assert parse("p") == Atom("p")


def test_parse_indexed_atom_with_variable_and_number():
    assert parse("c[i]") == IndexedAtom("c", "i")
    assert parse("c[3]") == IndexedAtom("c", 3)


def test_parse_constants():
    assert parse("true") == TrueLiteral()
    assert parse("false") == FalseLiteral()


def test_parse_exactly_one():
    assert parse("one t") == ExactlyOne("t")


def test_parse_boolean_connectives_and_precedence():
    assert parse("p & q | r") == Or(And(Atom("p"), Atom("q")), Atom("r"))
    assert parse("p | q & r") == Or(Atom("p"), And(Atom("q"), Atom("r")))
    assert parse("!p & q") == And(Not(Atom("p")), Atom("q"))


def test_parse_implication_is_right_associative():
    assert parse("p -> q -> r") == Implies(Atom("p"), Implies(Atom("q"), Atom("r")))


def test_parse_iff():
    assert parse("p <-> q") == Iff(Atom("p"), Atom("q"))


def test_parse_temporal_operators():
    assert parse("F p") == Finally(Atom("p"))
    assert parse("G p") == Globally(Atom("p"))
    assert parse("X p") == Next(Atom("p"))
    assert parse("p U q") == Until(Atom("p"), Atom("q"))
    assert parse("p R q") == Release(Atom("p"), Atom("q"))
    assert parse("p W q") == WeakUntil(Atom("p"), Atom("q"))


def test_parse_path_quantifiers():
    assert parse("E F p") == Exists(Finally(Atom("p")))
    assert parse("A G p") == ForAll(Globally(Atom("p")))


def test_parse_compact_ctl_spellings():
    assert parse("AG p") == ForAll(Globally(Atom("p")))
    assert parse("EF p") == Exists(Finally(Atom("p")))
    assert parse("AF p") == ForAll(Finally(Atom("p")))
    assert parse("EG p") == Exists(Globally(Atom("p")))
    assert parse("AX p") == ForAll(Next(Atom("p")))
    assert parse("EX p") == Exists(Next(Atom("p")))


def test_compact_spelling_only_applies_to_exact_identifier():
    # An identifier that merely starts with AG is still an atom.
    assert parse("AGx") == Atom("AGx")


def test_parse_index_quantifiers():
    assert parse("forall i . c[i]") == IndexForall("i", IndexedAtom("c", "i"))
    assert parse("exists j . d[j]") == IndexExists("j", IndexedAtom("d", "j"))


def test_parse_section5_property():
    formula = parse("forall i . AG(d[i] -> AF c[i])")
    expected = IndexForall(
        "i",
        ForAll(
            Globally(
                Implies(IndexedAtom("d", "i"), ForAll(Finally(IndexedAtom("c", "i"))))
            )
        ),
    )
    assert formula == expected


def test_parse_nested_parentheses():
    assert parse("((p))") == Atom("p")
    assert parse("E((p U q))") == Exists(Until(Atom("p"), Atom("q")))


def test_parse_until_is_right_associative():
    assert parse("p U q U r") == Until(Atom("p"), Until(Atom("q"), Atom("r")))


def test_parse_errors_report_position():
    with pytest.raises(ParseError):
        parse("p &")
    with pytest.raises(ParseError):
        parse("(p")
    with pytest.raises(ParseError):
        parse("p q")
    with pytest.raises(ParseError):
        parse("c[")
    with pytest.raises(ParseError) as excinfo:
        parse("p @ q")
    assert excinfo.value.position is not None


def test_parse_rejects_empty_input():
    with pytest.raises(ParseError):
        parse("")


def test_tokenize_skips_whitespace():
    tokens = tokenize("  p   &\tq ")
    assert [token.text for token in tokens] == ["p", "&", "q"]


@pytest.mark.parametrize(
    "text",
    [
        "forall i . AG(d[i] -> AF c[i])",
        "!(exists i . EF(!d[i] & !t[i] & E(!d[i] U t[i])))",
        "AG one t",
        "forall i . AG(d[i] -> A(d[i] U t[i]))",
        "p U (q R r)",
        "E(F p & G F q)",
        "p <-> q -> r",
        "X X X t[1]",
    ],
)
def test_print_parse_round_trip(text):
    formula = parse(text)
    assert parse(format_formula(formula)) == formula
