"""Tests for ``repro-lint``: every rule triggered, suppressed, and the tree clean.

Each rule gets a trigger fixture (a minimal source that must produce the
finding) and a suppress fixture (the same source with a pragma, producing
nothing), plus pragma-handling and CLI coverage.  The capstone test runs
the linter over the real ``src/`` tree and requires zero findings — the
CI gate in executable form.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.devtools.lint import (
    Finding,
    LintContext,
    RULES,
    RULES_BY_ID,
    lint_source,
    lint_text,
    load_obs_vocabulary,
    main,
    run_lint,
)

REPO_ROOT = os.path.dirname(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
)


def _ctx(path: str = "src/repro/example.py", vocabulary=None) -> LintContext:
    return LintContext(path=path, obs_vocabulary=vocabulary)


def _rules(findings):
    return [finding.rule for finding in findings]


# -- R001: engine enumerations ------------------------------------------------


class TestR001EngineEnumerations:
    def test_stale_enumeration_in_docstring_triggers(self):
        source = '"""Engines: bitset, naive, bdd, bmc."""\n'
        findings = lint_source(source, _ctx(), only=["R001"])
        assert _rules(findings) == ["R001"]
        assert "ic3" in findings[0].message

    def test_full_registry_enumeration_is_clean(self):
        source = '"""Engines: bitset, naive, bdd, bmc, ic3, portfolio."""\n'
        assert lint_source(source, _ctx(), only=["R001"]) == []

    def test_pre_portfolio_enumeration_is_stale(self):
        source = '"""Engines: bitset, naive, bdd, bmc, ic3."""\n'
        findings = lint_source(source, _ctx(), only=["R001"])
        assert _rules(findings) == ["R001"]
        assert "portfolio" in findings[0].message

    def test_ctl_subset_is_clean(self):
        source = '"""Fixpoint engines: bitset, naive, bdd."""\n'
        assert lint_source(source, _ctx(), only=["R001"]) == []

    def test_pairs_are_not_enumerations(self):
        source = '"""Compared against the naive and bitset oracles."""\n'
        assert lint_source(source, _ctx(), only=["R001"]) == []

    def test_sentence_separator_ends_the_run(self):
        # Three names, but split across two sentences: not one enumeration.
        source = '"""Use bdd or bitset.  The naive engine is the oracle."""\n'
        assert lint_source(source, _ctx(), only=["R001"]) == []

    def test_pragma_suppresses_deliberate_subset(self):
        source = (
            '"""Engines: bitset, naive, bdd, bmc."""'
            "  # repro-lint: disable=R001\n"
        )
        assert lint_source(source, _ctx(), only=["R001"]) == []

    def test_markdown_trigger_and_html_comment_pragma(self):
        text = "The SAT engines are `naive`, `bitset`, and `bdd`, and `bmc`.\n"
        findings = lint_text(text, _ctx("docs/X.md"), only=["R001"])
        assert _rules(findings) == ["R001"]
        suppressed = text.rstrip() + " <!-- repro-lint: disable=R001 -->\n"
        assert lint_text(suppressed, _ctx("docs/X.md"), only=["R001"]) == []


# -- R002: wall-clock reads ---------------------------------------------------


class TestR002WallClock:
    def test_time_time_outside_obs_triggers(self):
        source = "import time\nstart = time.time()\n"
        findings = lint_source(source, _ctx("src/repro/mc/foo.py"), only=["R002"])
        assert _rules(findings) == ["R002"]
        assert findings[0].line == 2

    def test_perf_counter_triggers(self):
        source = "import time\nstart = time.perf_counter_ns()\n"
        assert _rules(
            lint_source(source, _ctx("src/repro/sat/foo.py"), only=["R002"])
        ) == ["R002"]

    def test_obs_package_is_exempt(self):
        source = "import time\nstart = time.time()\n"
        assert lint_source(source, _ctx("src/repro/obs/trace.py"), only=["R002"]) == []

    def test_analysis_timing_is_exempt(self):
        source = "import time\nstart = time.monotonic()\n"
        assert (
            lint_source(source, _ctx("src/repro/analysis/timing.py"), only=["R002"])
            == []
        )

    def test_pragma_suppresses(self):
        source = "import time\nstart = time.time()  # repro-lint: disable=R002\n"
        assert lint_source(source, _ctx("src/repro/mc/foo.py"), only=["R002"]) == []


# -- R003: mutable defaults ---------------------------------------------------


class TestR003MutableDefaults:
    @pytest.mark.parametrize("default", ["[]", "{}", "set()", "dict()", "list()"])
    def test_mutable_default_triggers(self, default):
        source = "def f(x=%s):\n    return x\n" % default
        assert _rules(lint_source(source, _ctx(), only=["R003"])) == ["R003"]

    def test_immutable_defaults_are_clean(self):
        source = "def f(a=(), b=None, c=0, d='x', e=frozenset()):\n    return a\n"
        assert lint_source(source, _ctx(), only=["R003"]) == []

    def test_lambda_and_method_defaults_covered(self):
        source = (
            "class C:\n"
            "    def m(self, x=[]):\n"
            "        return x\n"
            "g = lambda y={}: y\n"
        )
        findings = lint_source(source, _ctx(), only=["R003"])
        assert _rules(findings) == ["R003", "R003"]

    def test_pragma_suppresses(self):
        source = "def f(x=[]):  # repro-lint: disable=R003\n    return x\n"
        assert lint_source(source, _ctx(), only=["R003"]) == []


# -- R004: observability vocabulary ------------------------------------------


class TestR004ObsVocabulary:
    VOCAB = frozenset({"mc.check", "sat.solve", "mc.checks"})

    def test_undocumented_span_name_triggers(self):
        source = "with _span('mc.unknown.name'):\n    pass\n"
        findings = lint_source(
            source, _ctx(vocabulary=self.VOCAB), only=["R004"]
        )
        assert _rules(findings) == ["R004"]
        assert "mc.unknown.name" in findings[0].message

    def test_documented_names_are_clean(self):
        source = (
            "with _span('mc.check'):\n"
            "    counter('mc.checks').inc()\n"
        )
        assert lint_source(source, _ctx(vocabulary=self.VOCAB), only=["R004"]) == []

    def test_attribute_sinks_are_checked(self):
        source = "_metrics.counter('sat.bogus').inc()\n"
        assert _rules(
            lint_source(source, _ctx(vocabulary=self.VOCAB), only=["R004"])
        ) == ["R004"]

    def test_dynamic_names_are_out_of_scope(self):
        source = "counter('sat.' + field).inc()\n"
        assert lint_source(source, _ctx(vocabulary=self.VOCAB), only=["R004"]) == []

    def test_no_vocabulary_skips_the_rule(self):
        source = "with _span('whatever.name'):\n    pass\n"
        assert lint_source(source, _ctx(vocabulary=None), only=["R004"]) == []

    def test_pragma_suppresses(self):
        source = "with _span('mc.unknown'):  # repro-lint: disable=R004\n    pass\n"
        assert lint_source(source, _ctx(vocabulary=self.VOCAB), only=["R004"]) == []

    def test_vocabulary_extraction(self):
        doc = (
            "The `mc.check` span and the `mc.checks{engine=bdd}` counter.\n"
            "Not code: mc.naked.name.  `UPPER.CASE` is ignored.\n"
        )
        vocabulary = load_obs_vocabulary(doc)
        assert "mc.check" in vocabulary
        assert "mc.checks" in vocabulary  # labels stripped
        assert "mc.naked.name" not in vocabulary  # outside a code span


# -- R005: blanket except -----------------------------------------------------


class TestR005BlanketExcept:
    def test_bare_except_pass_triggers(self):
        source = "try:\n    f()\nexcept:\n    pass\n"
        assert _rules(lint_source(source, _ctx(), only=["R005"])) == ["R005"]

    def test_except_exception_swallow_triggers(self):
        source = "try:\n    f()\nexcept Exception:\n    x = 1\n"
        assert _rules(lint_source(source, _ctx(), only=["R005"])) == ["R005"]

    def test_reraise_is_clean(self):
        source = "try:\n    f()\nexcept Exception:\n    raise\n"
        assert lint_source(source, _ctx(), only=["R005"]) == []

    def test_narrow_except_is_clean(self):
        source = "try:\n    f()\nexcept ValueError:\n    pass\n"
        assert lint_source(source, _ctx(), only=["R005"]) == []

    def test_tuple_containing_exception_triggers(self):
        source = "try:\n    f()\nexcept (ValueError, Exception):\n    pass\n"
        assert _rules(lint_source(source, _ctx(), only=["R005"])) == ["R005"]

    def test_pragma_suppresses(self):
        source = (
            "try:\n    f()\nexcept Exception:  # repro-lint: disable=R005\n    pass\n"
        )
        assert lint_source(source, _ctx(), only=["R005"]) == []


# -- R006: __all__ consistency ------------------------------------------------


class TestR006DunderAll:
    def test_phantom_export_triggers(self):
        source = "__all__ = ['exists', 'phantom']\n\ndef exists():\n    pass\n"
        findings = lint_source(source, _ctx(), only=["R006"])
        assert _rules(findings) == ["R006"]
        assert "phantom" in findings[0].message

    def test_consistent_all_is_clean(self):
        source = (
            "__all__ = ['CONST', 'C', 'f']\n"
            "CONST = 1\n"
            "class C:\n    pass\n"
            "def f():\n    pass\n"
        )
        assert lint_source(source, _ctx(), only=["R006"]) == []

    def test_imported_names_count_as_defined(self):
        source = "from os.path import join\n__all__ = ['join']\n"
        assert lint_source(source, _ctx(), only=["R006"]) == []

    def test_pragma_suppresses(self):
        source = "__all__ = ['ghost']  # repro-lint: disable=R006\n"
        assert lint_source(source, _ctx(), only=["R006"]) == []


# -- pragmas, driver, CLI -----------------------------------------------------


class TestPragmasAndDriver:
    def test_file_wide_pragma(self):
        source = (
            "# repro-lint: disable-file=R003\n"
            "def f(x=[]):\n    return x\n"
            "def g(y={}):\n    return y\n"
        )
        assert lint_source(source, _ctx(), only=["R003"]) == []

    def test_disable_all_sentinel(self):
        source = "def f(x=[]):  # repro-lint: disable=all\n    return x\n"
        assert lint_source(source, _ctx()) == []

    def test_pragma_inside_string_literal_does_not_count(self):
        source = 'note = "# repro-lint: disable-file=R003"\ndef f(x=[]):\n    return x\n'
        assert _rules(lint_source(source, _ctx(), only=["R003"])) == ["R003"]

    def test_pragma_only_suppresses_named_rule(self):
        source = "def f(x=[]):  # repro-lint: disable=R005\n    return x\n"
        assert _rules(lint_source(source, _ctx(), only=["R003"])) == ["R003"]

    def test_syntax_error_reported_as_e000(self):
        findings = lint_source("def broken(:\n", _ctx())
        assert _rules(findings) == ["E000"]

    def test_unknown_rule_id_raises(self):
        with pytest.raises(ValueError):
            lint_source("x = 1\n", _ctx(), only=["R999"])

    def test_finding_format_and_dict(self):
        finding = Finding(path="a.py", line=3, col=7, rule="R003", message="m")
        assert finding.format() == "a.py:3:7: R003 m"
        assert finding.to_dict()["rule"] == "R003"

    def test_rule_catalog_is_complete(self):
        assert sorted(RULES_BY_ID) == ["R001", "R002", "R003", "R004", "R005", "R006"]
        assert len(RULES) == 6
        for rule in RULES:
            assert rule.title and rule.rationale


class TestCLI:
    def test_clean_file_exits_zero(self, tmp_path, capsys):
        target = tmp_path / "clean.py"
        target.write_text("x = 1\n")
        assert main([str(target)]) == 0
        assert "0 findings" in capsys.readouterr().out

    def test_findings_exit_one_with_locations(self, tmp_path, capsys):
        target = tmp_path / "bad.py"
        target.write_text("def f(x=[]):\n    return x\n")
        assert main([str(target), "--select", "R003"]) == 1
        out = capsys.readouterr().out
        assert "bad.py:1:" in out and "R003" in out

    def test_json_output(self, tmp_path, capsys):
        target = tmp_path / "bad.py"
        target.write_text("def f(x=[]):\n    return x\n")
        assert main([str(target), "--select", "R003", "--format", "json"]) == 1
        document = json.loads(capsys.readouterr().out)
        assert document["tool"] == "repro-lint"
        assert document["files_checked"] == 1
        assert document["findings"][0]["rule"] == "R003"

    def test_missing_path_exits_two(self, tmp_path, capsys):
        assert main([str(tmp_path / "nope.py")]) == 2
        assert "error" in capsys.readouterr().err

    def test_no_paths_exits_two(self, capsys):
        assert main([]) == 2
        capsys.readouterr()

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("R001", "R006"):
            assert rule_id in out


# -- the capstone: the real tree must be clean --------------------------------


class TestTreeIsClean:
    def test_src_docs_and_readme_have_zero_findings(self):
        paths = [
            os.path.join(REPO_ROOT, "src"),
            os.path.join(REPO_ROOT, "docs"),
            os.path.join(REPO_ROOT, "README.md"),
        ]
        findings = run_lint(paths)
        assert findings == [], "\n".join(finding.format() for finding in findings)
