"""Unit tests for resource budgets and cooperative checkpoints.

These run in-process (no workers): ``checkpoint`` only reacts to the
ambient ``REPRO_CHAOS`` environment through :func:`repro.runtime.chaos.enable`,
which these tests never call, so the CI chaos lane cannot perturb them.
"""

import time

import pytest

from repro.errors import BudgetExceededError, CancelledError
from repro.runtime import limits


@pytest.fixture(autouse=True)
def _disarm():
    """Leave no budget or chaos hook armed behind, whatever a test does."""
    yield
    limits.deactivate()
    limits.set_chaos_hook(None)


class TestResourceBudget:
    def test_defaults_are_unlimited(self):
        budget = limits.ResourceBudget()
        assert budget.is_unlimited()
        assert budget.as_dict() == {
            "deadline_s": None,
            "memory_bytes": None,
            "bdd_nodes": None,
            "sat_conflicts": None,
        }

    def test_any_ceiling_clears_unlimited(self):
        assert not limits.ResourceBudget(deadline_s=1.0).is_unlimited()
        assert not limits.ResourceBudget(memory_bytes=1).is_unlimited()
        assert not limits.ResourceBudget(bdd_nodes=1).is_unlimited()
        assert not limits.ResourceBudget(sat_conflicts=1).is_unlimited()

    def test_as_dict_carries_the_configured_ceilings(self):
        budget = limits.ResourceBudget(deadline_s=2.5, sat_conflicts=1000)
        assert budget.as_dict()["deadline_s"] == 2.5
        assert budget.as_dict()["sat_conflicts"] == 1000
        assert budget.as_dict()["bdd_nodes"] is None

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"deadline_s": 0},
            {"deadline_s": -1.0},
            {"memory_bytes": 0},
            {"bdd_nodes": -5},
            {"sat_conflicts": 0},
        ],
    )
    def test_non_positive_ceilings_are_rejected(self, kwargs):
        with pytest.raises(ValueError):
            limits.ResourceBudget(**kwargs)


class TestCheckpoint:
    def test_noop_while_nothing_is_armed(self):
        assert limits.current_budget() is None
        limits.checkpoint("anywhere", bdd_nodes=10**9)  # must not raise

    def test_deadline_raises_structured_budget_error(self):
        with limits.active(limits.ResourceBudget(deadline_s=0.005)):
            time.sleep(0.02)
            with pytest.raises(BudgetExceededError) as excinfo:
                limits.checkpoint("test.site")
        error = excinfo.value
        assert error.resource == "deadline"
        assert error.limit == 0.005
        assert error.observed > error.limit
        assert error.site == "test.site"

    @pytest.mark.parametrize("resource", ["bdd_nodes", "sat_conflicts"])
    def test_gauge_ceiling_raises_when_crossed(self, resource):
        budget = limits.ResourceBudget(**{resource: 10})
        with limits.active(budget):
            limits.checkpoint("test.gauge", **{resource: 10})  # at ceiling: fine
            with pytest.raises(BudgetExceededError) as excinfo:
                limits.checkpoint("test.gauge", **{resource: 11})
        assert excinfo.value.resource == resource
        assert excinfo.value.limit == 10
        assert excinfo.value.observed == 11
        assert excinfo.value.site == "test.gauge"

    def test_unreported_gauges_do_not_trip_ceilings(self):
        with limits.active(limits.ResourceBudget(bdd_nodes=1)):
            limits.checkpoint("test.other", sat_conflicts=10**6)  # must not raise

    def test_cancel_token_raises_cancelled_error(self):
        token = limits.CancelToken()
        assert not token.is_set()
        with limits.active(limits.ResourceBudget(), cancel=token):
            limits.checkpoint("test.before")  # token unset: fine
            token.set()
            with pytest.raises(CancelledError) as excinfo:
                limits.checkpoint("test.after")
        assert excinfo.value.site == "test.after"
        assert token.is_set()


class TestActivation:
    def test_budgets_do_not_nest(self):
        limits.activate(limits.ResourceBudget())
        try:
            with pytest.raises(RuntimeError):
                limits.activate(limits.ResourceBudget())
        finally:
            limits.deactivate()

    def test_deactivate_returns_the_armed_budget(self):
        budget = limits.ResourceBudget(deadline_s=9.0)
        limits.activate(budget)
        assert limits.current_budget() is budget
        assert limits.deactivate() is budget
        assert limits.current_budget() is None
        assert limits.deactivate() is None  # idempotent

    def test_active_context_disarms_on_exit_even_on_error(self):
        with pytest.raises(ValueError):
            with limits.active(limits.ResourceBudget()):
                assert limits.current_budget() is not None
                raise ValueError("engine bug")
        assert limits.current_budget() is None


class TestChaosHook:
    def test_hook_fires_at_checkpoints_without_a_budget(self):
        sites = []
        limits.set_chaos_hook(sites.append)
        limits.checkpoint("test.one")
        limits.checkpoint("test.two")
        assert sites == ["test.one", "test.two"]
        limits.set_chaos_hook(None)
        limits.checkpoint("test.three")
        assert sites == ["test.one", "test.two"]


def test_apply_memory_limit_succeeds_on_posix():
    # A ceiling far above anything the test process uses: the rlimit call
    # must go through without disturbing the rest of the suite.
    assert limits.apply_memory_limit(1 << 40) is True
