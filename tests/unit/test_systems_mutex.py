"""Unit tests for the lock-based mutual-exclusion family (`systems/mutex.py`)."""

import pytest

from repro.errors import StructureError
from repro.kripke.paths import is_path
from repro.kripke.validation import assert_total
from repro.mc import BoundedModelChecker, SymbolicCTLModelChecker, crosscheck_ctl_engines
from repro.mc.indexed import ICTLStarModelChecker
from repro.logic.builders import AF, iatom
from repro.systems import mutex


@pytest.fixture(scope="module")
def mutex3():
    return mutex.build_mutex(3)


@pytest.fixture(scope="module")
def mutex3_buggy():
    return mutex.build_mutex(3, buggy=True)


class TestExplicitStructure:
    def test_initial_state_and_totality(self, mutex3):
        initial = mutex3.initial_state
        assert initial == mutex.mutex_initial_state(3)
        assert not initial.lock
        assert_total(mutex3)

    def test_state_count_small_instances(self):
        # One process: I -> R -> C cycle, 3 states.
        assert mutex.build_mutex(1).num_states == 3
        # The lock bit is derived (lock iff someone is critical), so states
        # are the part vectors with at most one C: 3^n - over-counts; n=2
        # explicit exploration gives the exact reachable count.
        assert mutex.build_mutex(2).num_states == 8

    def test_labels(self, mutex3):
        from repro.kripke.structure import IndexedProp

        label = mutex3.label(mutex3.initial_state)
        assert label == frozenset(IndexedProp("n", i) for i in (1, 2, 3))
        state = mutex.MutexState(parts=("C", "R", "I"), lock=True)
        assert mutex.mutex_state_label(state) == frozenset(
            {IndexedProp("c", 1), IndexedProp("r", 2), IndexedProp("n", 3), mutex.LOCK_PROP}
        )

    def test_buggy_reaches_more_states(self, mutex3, mutex3_buggy):
        assert mutex3_buggy.num_states > mutex3.num_states

    def test_max_states_guard(self):
        with pytest.raises(StructureError):
            mutex.build_mutex(4, max_states=5)

    def test_invalid_size(self):
        with pytest.raises(StructureError):
            mutex.build_mutex(0)


class TestProperties:
    def test_safety_holds_and_liveness_needs_fairness(self, mutex3):
        plain = ICTLStarModelChecker(mutex3, enforce_restrictions=False)
        assert plain.check(mutex.mutex_safety(3))
        assert not plain.check(mutex.mutex_liveness())
        fair = ICTLStarModelChecker(
            mutex3,
            enforce_restrictions=False,
            fairness=mutex.mutex_scheduler_fairness(3),
        )
        assert fair.check(mutex.mutex_liveness())

    def test_buggy_violates_safety(self, mutex3_buggy):
        checker = ICTLStarModelChecker(mutex3_buggy, enforce_restrictions=False)
        assert not checker.check(mutex.mutex_safety(3))
        # The request/critical cycle itself still works.
        assert checker.check(mutex.mutex_liveness()) is False

    def test_crosschecked_across_satisfaction_set_engines(self, mutex3, mutex3_buggy):
        crosscheck_ctl_engines(mutex3, mutex.mutex_safety(3))
        crosscheck_ctl_engines(mutex3_buggy, mutex.mutex_safety(3))
        crosscheck_ctl_engines(
            mutex3, AF(iatom("c", 2)), fairness=mutex.mutex_scheduler_fairness(3)
        )


class TestSymbolicEncoding:
    def test_symbolic_matches_explicit_state_count(self, mutex3):
        assert mutex.symbolic_mutex(3).num_states == mutex3.num_states

    def test_symbolic_verdicts_match_explicit(self, mutex3):
        symbolic = SymbolicCTLModelChecker(mutex.symbolic_mutex(3))
        explicit = ICTLStarModelChecker(mutex3, enforce_restrictions=False)
        for formula in (mutex.mutex_safety(3), mutex.mutex_liveness()):
            assert symbolic.check(formula) == explicit.check(formula)

    def test_symbolic_buggy_violates_safety(self):
        checker = SymbolicCTLModelChecker(mutex.symbolic_mutex(3, buggy=True))
        assert not checker.check(mutex.mutex_safety(3))

    def test_encode_decode_round_trip(self):
        encoded = mutex.symbolic_mutex(2)
        state = mutex.MutexState(parts=("R", "C"), lock=True)
        assert encoded.decode_state(encoded.encode_state(state)) == state

    def test_domain_validation(self):
        with pytest.raises(StructureError):
            mutex.symbolic_mutex(2, domain="bogus")


class TestBMCTarget:
    """The mutex family as the BMC falsification target (all five engines)."""

    def test_bmc_finds_the_race_with_validated_path(self):
        size = 4
        explicit = mutex.build_mutex(size, buggy=True)
        free = mutex.symbolic_mutex(size, buggy=True, domain="free")
        checker = BoundedModelChecker(free, bound=8)
        assert not checker.check(mutex.mutex_safety(size))
        path = checker.last_counterexample
        assert path is not None and path[0] == explicit.initial_state
        assert is_path(explicit, path)
        # Depth 4: request, acquire, request, buggy acquire.
        assert len(path) - 1 == 4

    def test_bmc_proves_correct_mutex_safe(self):
        free = mutex.symbolic_mutex(3, domain="free")
        checker = BoundedModelChecker(free, bound=10)
        assert checker.check(mutex.mutex_safety(3))
        assert "induction" in checker.last_detail

    def test_all_four_engines_agree_on_safety(self, mutex3, mutex3_buggy):
        from repro.mc import make_ctl_checker
        from repro.mc.bitset import ENGINE_NAMES

        for structure, expected in ((mutex3, True), (mutex3_buggy, False)):
            size = len(structure.index_values)
            for engine in ENGINE_NAMES:
                checker = make_ctl_checker(structure, engine=engine, bound=10)
                assert checker.check(mutex.mutex_safety(size)) is expected, engine
