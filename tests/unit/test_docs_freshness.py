"""Docs-freshness guard: the engine registry and the docs must agree.

Adding an engine to ``ENGINE_NAMES`` without documenting it (or renaming
one and leaving stale prose behind) fails here, not in a reader's hands.
Runs as part of tier-1 and as a dedicated CI step.
"""

import re
from pathlib import Path

import pytest

from repro.mc.bitset import CTL_ENGINES, ENGINE_NAMES

_REPO_ROOT = Path(__file__).resolve().parents[2]
_DOC_FILES = [
    _REPO_ROOT / "README.md",
    _REPO_ROOT / "docs" / "ENGINES.md",
    _REPO_ROOT / "docs" / "ARCHITECTURE.md",
    _REPO_ROOT / "docs" / "OBSERVABILITY.md",
    _REPO_ROOT / "docs" / "CORRECTNESS.md",
    _REPO_ROOT / "docs" / "RESILIENCE.md",
]


@pytest.fixture(scope="module", params=_DOC_FILES, ids=lambda p: p.name)
def doc(request):
    path = request.param
    assert path.is_file(), "missing documentation file: %s" % path
    return path.read_text(encoding="utf-8")


def test_every_registered_engine_is_documented(doc):
    for engine in ENGINE_NAMES:
        assert re.search(r"\b%s\b" % re.escape(engine), doc), (
            "engine %r from ENGINE_NAMES is not mentioned" % engine
        )


def test_engine_count_prose_matches_registry():
    """The READMEs advertise the engine count in words; keep it honest."""
    words = {
        3: "three",
        4: "four",
        5: "five",
        6: "six",
        7: "seven",
    }
    expected = words[len(ENGINE_NAMES)]
    readme = (_REPO_ROOT / "README.md").read_text(encoding="utf-8")
    assert ("%s engines" % expected) in readme
    stale = [
        "%s engines" % words[count]
        for count in words
        if count != len(ENGINE_NAMES)
    ]
    for phrase in stale:
        # "all three engines" legitimately refers to the CTL_ENGINES
        # subset; only flat engine-count claims go stale.
        assert ("of **%s" % phrase.split()[0]) not in readme, (
            "README still advertises %r" % phrase
        )


def test_docs_name_the_ctl_subset(doc):
    """CTL_ENGINES is the satisfaction-set subset; docs must not promise
    satisfaction sets for the verdict-only SAT engines."""
    for engine in sorted(set(ENGINE_NAMES) - set(CTL_ENGINES)):
        assert re.search(r"\b%s\b" % re.escape(engine), doc)


def test_docs_cross_link_each_other():
    readme = (_REPO_ROOT / "README.md").read_text(encoding="utf-8")
    assert "docs/ENGINES.md" in readme
    assert "docs/ARCHITECTURE.md" in readme
    assert "docs/OBSERVABILITY.md" in readme
    assert "docs/CORRECTNESS.md" in readme
    assert "docs/RESILIENCE.md" in readme
    engines = (_REPO_ROOT / "docs" / "ENGINES.md").read_text(encoding="utf-8")
    assert "ARCHITECTURE.md" in engines
    architecture = (_REPO_ROOT / "docs" / "ARCHITECTURE.md").read_text(
        encoding="utf-8"
    )
    assert "ENGINES.md" in architecture
    assert "OBSERVABILITY.md" in architecture
    assert "CORRECTNESS.md" in architecture
    observability = (_REPO_ROOT / "docs" / "OBSERVABILITY.md").read_text(
        encoding="utf-8"
    )
    assert "ARCHITECTURE.md" in observability
    assert "ENGINES.md" in observability
    correctness = (_REPO_ROOT / "docs" / "CORRECTNESS.md").read_text(
        encoding="utf-8"
    )
    for companion in ("ARCHITECTURE.md", "ENGINES.md", "OBSERVABILITY.md"):
        assert companion in correctness
    resilience = (_REPO_ROOT / "docs" / "RESILIENCE.md").read_text(
        encoding="utf-8"
    )
    for companion in (
        "ARCHITECTURE.md",
        "ENGINES.md",
        "OBSERVABILITY.md",
        "CORRECTNESS.md",
    ):
        assert companion in resilience


def test_correctness_doc_matches_the_lint_catalog():
    """docs/CORRECTNESS.md documents every repro-lint rule, by id."""
    from repro.devtools.lint import RULES

    correctness = (_REPO_ROOT / "docs" / "CORRECTNESS.md").read_text(
        encoding="utf-8"
    )
    for rule in RULES:
        assert re.search(r"\b%s\b" % rule.id, correctness), (
            "lint rule %s is not documented in docs/CORRECTNESS.md" % rule.id
        )


def test_observability_doc_names_the_cli_flags_and_span_vocabulary():
    """The observability guide must document the CLI surface and the span
    names the engines actually emit — the acceptance-trace vocabulary."""
    text = (_REPO_ROOT / "docs" / "OBSERVABILITY.md").read_text(encoding="utf-8")
    for flag in ("--trace", "--metrics", "--progress", "--profile"):
        assert flag in text, "flag %s is undocumented" % flag
    for span_name in (
        "build.compile",
        "build.encode",
        "mc.check",
        "sat.solve",
        "bmc.depth",
        "ic3.frame",
        "ic3.generalize",
        "bdd.fixpoint.eu",
        "bitset.eu",
        "portfolio.race",
        "obs.collect",
        "worker.heartbeat",
    ):
        assert span_name in text, "span %r is undocumented" % span_name
    for metric_name in (
        "portfolio.races",
        "portfolio.wins",
        "worker.launched",
        "worker.restarts",
        "worker.crashes",
        "worker.hangs",
        "worker.garbled",
        "worker.oom",
        "obs.collect.batches",
        "obs.collect.spans",
        "obs.collect.series",
        "obs.collect.dropped",
    ):
        assert metric_name in text, "metric %r is undocumented" % metric_name
    # The cross-process vocabulary: the worker label, the histogram
    # percentile columns, and the offline analysis entry point.
    for term in ("worker=", "p50", "p90", "p99", "repro-obs", "coordinator"):
        assert term in text, "%r is undocumented" % term


def test_resilience_doc_names_the_cli_flags_and_chaos_knobs():
    """The resilience guide must document the runtime CLI surface, the
    chaos environment knobs, and the failure vocabulary."""
    text = (_REPO_ROOT / "docs" / "RESILIENCE.md").read_text(encoding="utf-8")
    for flag in ("--timeout", "--memory-limit", "--workers"):
        assert flag in text, "flag %s is undocumented" % flag
    for knob in ("REPRO_CHAOS", "REPRO_CHAOS_SEED"):
        assert knob in text, "chaos knob %s is undocumented" % knob
    for name in (
        "ResourceBudget",
        "BudgetExceededError",
        "CancelledError",
        "EngineDisagreementError",
        "EngineCrashError",
        "InconclusiveError",
    ):
        assert name in text, "%s is undocumented" % name
    readme = (_REPO_ROOT / "README.md").read_text(encoding="utf-8")
    for flag in ("--timeout", "--memory-limit", "--workers", "--buggy"):
        assert flag in readme, "flag %s is missing from the README" % flag
