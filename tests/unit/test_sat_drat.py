"""Tests for DRAT proof logging and the forward RUP/RAT proof checker.

Three layers: the checker itself (accepts valid derivations, rejects
fabricated ones — a checker that accepts everything certifies nothing),
the solver's proof logging across its whole feature surface (learning,
assumptions, inprocessing), and the end-to-end certification paths the
engines expose (IC3 invariant certificates, BMC k-induction proofs).
"""

from __future__ import annotations

import random

import pytest

from repro.sat.drat import ProofError, ProofLog, check_proof
from repro.sat.solver import Solver


# ---------------------------------------------------------------------------
# The checker on hand-built proofs
# ---------------------------------------------------------------------------


class TestChecker:
    def test_classic_resolution_refutation(self):
        # (1 2)(−1 2)(1 −2)(−1 −2): derive (2) by RUP, then the empty clause.
        log = ProofLog()
        for clause in ([1, 2], [-1, 2], [1, -2], [-1, -2]):
            log.input(clause)
        log.add([2])
        log.add([])
        stats = check_proof(log)
        assert stats == {"inputs": 4, "added": 2, "deleted": 0, "unsat_checks": 0}

    def test_unsat_verdict_without_assumptions(self):
        log = ProofLog()
        log.input([1])
        log.input([-1])
        log.unsat([])
        assert check_proof(log)["unsat_checks"] == 1

    def test_unsat_verdict_under_assumptions(self):
        # Satisfiable database, contradiction only under the assumption.
        log = ProofLog()
        log.input([-1, 2])
        log.input([-2])
        log.unsat([1])
        assert check_proof(log)["unsat_checks"] == 1

    def test_bogus_verdict_rejected(self):
        log = ProofLog()
        log.input([1, 2])
        log.unsat([])
        with pytest.raises(ProofError, match="UNSAT"):
            check_proof(log)

    def test_non_rup_addition_rejected(self):
        log = ProofLog()
        log.input([1, 2])
        log.add([-1])  # nothing implies this
        with pytest.raises(ProofError, match="neither RUP nor RAT"):
            check_proof(log)

    def test_deleting_absent_clause_rejected(self):
        log = ProofLog()
        log.input([1, 2])
        log.delete([1, 3])
        with pytest.raises(ProofError, match="matches no active clause"):
            check_proof(log)

    def test_deletion_is_multiset_matched(self):
        log = ProofLog()
        log.input([1, 2])
        log.delete([2, 1])  # same clause, different literal order: fine
        assert check_proof(log)["deleted"] == 1
        log.delete([2, 1])  # but only one copy existed
        with pytest.raises(ProofError):
            check_proof(log)

    def test_rat_addition_accepted(self):
        # (4) is not RUP over {(1 2)} but is vacuously RAT on pivot 4:
        # no clause contains -4, so there are no resolvents to check.
        log = ProofLog()
        log.input([1, 2])
        log.add([4])
        assert check_proof(log)["added"] == 1

    def test_deletion_can_break_a_later_derivation(self):
        # After deleting (1 2), the RUP derivation of (2) no longer goes
        # through — the checker must track deletions, not just additions.
        log = ProofLog()
        for clause in ([1, 2], [-1, 2], [1, -2], [-1, -2]):
            log.input(clause)
        log.delete([1, 2])
        log.add([2])
        with pytest.raises(ProofError):
            check_proof(log)

    def test_error_reports_step_index(self):
        log = ProofLog()
        log.input([1, 2])
        log.add([-2])
        try:
            check_proof(log)
        except ProofError as error:
            assert "step 1" in str(error)
        else:  # pragma: no cover - the check must fail
            pytest.fail("bogus addition was accepted")

    def test_drat_text_export(self):
        log = ProofLog()
        log.input([1, 2])
        log.add([1])
        log.delete([1, 2])
        log.unsat([5])
        text = log.to_drat_text()
        lines = text.strip().splitlines()
        assert "1 0" in lines
        assert "d 1 2 0" in lines
        assert any(line.startswith("c ") and "5" in line for line in lines)
        assert "1 2 0" not in lines  # inputs live in the CNF, not the proof

    def test_log_bookkeeping(self):
        log = ProofLog()
        log.input([1])
        log.add([2])
        log.unsat([3])
        assert len(log) == 3
        assert log.inputs() == [(1,)]
        assert log.unsat_verdicts() == [(3,)]
        log.clear()
        assert len(log) == 0


# ---------------------------------------------------------------------------
# Solver round-trips
# ---------------------------------------------------------------------------


def _random_instance(rng: random.Random, num_vars: int, num_clauses: int) -> Solver:
    solver = Solver()
    variables = [solver.new_var() for _ in range(num_vars)]
    solver.start_proof()
    for _ in range(num_clauses):
        chosen = rng.sample(variables, 3)
        solver.add_clause([var * rng.choice((1, -1)) for var in chosen])
    return solver


class TestSolverRoundTrip:
    def test_pigeonhole_refutation_certifies(self):
        solver = Solver()
        pigeon = {(i, j): solver.new_var() for i in range(4) for j in range(3)}
        solver.start_proof()
        for i in range(4):
            solver.add_clause([pigeon[(i, j)] for j in range(3)])
        for j in range(3):
            for first in range(4):
                for second in range(first + 1, 4):
                    solver.add_clause([-pigeon[(first, j)], -pigeon[(second, j)]])
        assert not solver.solve()
        stats = check_proof(solver.proof)
        assert stats["unsat_checks"] == 1
        assert stats["added"] > 0  # the refutation needed learnt clauses

    def test_unsat_under_assumptions_certifies(self):
        solver = Solver()
        a, b, c = (solver.new_var() for _ in range(3))
        solver.start_proof()
        solver.add_clause([-a, b])
        solver.add_clause([-b, c])
        assert solver.solve()  # satisfiable outright: no verdict logged
        assert not solver.solve([a, -c])
        assert solver.proof.unsat_verdicts() == [(a, -c)]
        check_proof(solver.proof)

    def test_random_unsat_instances_certify(self):
        rng = random.Random(7)
        verdicts = 0
        for _ in range(30):
            solver = _random_instance(rng, rng.randint(4, 10), rng.randint(18, 50))
            if not solver.solve():
                verdicts += check_proof(solver.proof)["unsat_checks"]
        assert verdicts >= 5  # at that ratio, a good share must be UNSAT

    def test_proof_survives_inprocessing(self):
        # Force the inprocessor (subsumption, strengthening, vivification)
        # to run between solves; its deletions/strengthenings must all land
        # in the log in a checkable order.
        rng = random.Random(99)
        solver = _random_instance(rng, 40, 170)
        solver.solve()
        solver.inprocess()
        a = 1
        if solver.solve([a]) is False:
            pass  # verdict logged either way; just exercise the path
        check_proof(solver.proof)

    def test_tampered_log_is_rejected(self):
        solver = Solver()
        v = solver.new_var()
        w = solver.new_var()
        solver.start_proof()
        solver.add_clause([v, w])
        solver.add_clause([-v, w])
        solver.add_clause([-w])
        assert not solver.solve()
        check_proof(solver.proof)  # sanity: the honest log passes
        # Flip the (-w) input: the database is now satisfiable, so the
        # logged UNSAT verdict can no longer be certified.
        for index, (kind, lits) in enumerate(solver.proof.steps):
            if kind == "i" and lits == (-w,):
                solver.proof.steps[index] = (kind, (w,))
                break
        with pytest.raises(ProofError):
            check_proof(solver.proof)

    def test_start_proof_snapshots_existing_state(self):
        # Clauses added *before* start_proof appear as inputs, so later
        # derivations check against the solver's real database.
        solver = Solver()
        a, b = solver.new_var(), solver.new_var()
        solver.add_clause([a, b])
        solver.add_clause([-a, b])
        log = solver.start_proof()
        solver.add_clause([-b])
        assert not solver.solve()
        assert len(log.inputs()) >= 2
        check_proof(log)

    def test_stop_proof_detaches(self):
        solver = Solver()
        v = solver.new_var()
        solver.start_proof()
        solver.add_clause([v])
        solver.stop_proof()
        assert solver.proof is None
        solver.add_clause([-v])  # no log to corrupt
        assert not solver.solve()


class TestFuzzHarness:
    def test_fuzz_batch_certifies_every_unsat(self, capsys):
        from repro.sat.fuzz import run_fuzz

        assert run_fuzz(count=10, seed=5) == 0
        out = capsys.readouterr().out
        assert "certified UNSAT" in out


# ---------------------------------------------------------------------------
# Engine-level certification
# ---------------------------------------------------------------------------


class TestEngineCertification:
    def test_ic3_mutex_invariant_is_drat_certified(self, sanitizers):
        from repro.mc.ic3 import IC3ModelChecker
        from repro.systems import mutex

        checker = IC3ModelChecker(mutex.build_mutex(2), drat=True)
        assert checker.check(mutex.mutex_safety(2))
        stats = checker.last_proof_stats
        assert stats is not None and stats["unsat_checks"] >= 1

    def test_ic3_without_drat_skips_certification(self):
        from repro.mc.ic3 import IC3ModelChecker
        from repro.systems import mutex

        checker = IC3ModelChecker(mutex.build_mutex(2))
        assert checker.check(mutex.mutex_safety(2))
        assert checker.last_proof_stats is None

    def test_bmc_k_induction_proof_is_drat_certified(self, sanitizers):
        from repro.mc.bmc import BoundedModelChecker
        from repro.systems import mutex

        checker = BoundedModelChecker(mutex.build_mutex(2), bound=10, drat=True)
        assert checker.check(mutex.mutex_safety(2))
        assert "induction" in checker.last_detail
        stats = checker.last_proof_stats
        assert stats is not None and stats["unsat_checks"] >= 1
