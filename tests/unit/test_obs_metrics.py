"""Unit tests for the metrics registry: counters, gauges, histograms.

Pins the export format the CLI (``--profile``/``--metrics``) and the
benchmark suite read: flat ``name{label=value}`` snapshot keys, JSONL
records, and the power-of-two histogram bucketing rule (bucket ``i``
counts observations with ``2**(i-1) < v <= 2**i``).
"""

from __future__ import annotations

import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    _bucket_index,
)


def test_counter_only_goes_up():
    counter = Counter()
    counter.inc()
    counter.inc(5)
    counter.inc(0)
    assert counter.snapshot() == 6
    with pytest.raises(ValueError):
        counter.inc(-1)
    assert counter.snapshot() == 6


def test_gauge_set_and_set_max():
    gauge = Gauge()
    gauge.set(10)
    gauge.set(3)
    assert gauge.snapshot() == 3
    gauge.set_max(7)
    gauge.set_max(5)
    assert gauge.snapshot() == 7


@pytest.mark.parametrize(
    "value,expected",
    [
        (0, 0),
        (0.5, 0),
        (1, 0),
        (1.001, 1),
        (2, 1),
        (3, 2),
        (4, 2),
        (5, 3),
        (8, 3),
        (9, 4),
        (1024, 10),
        (1025, 11),
    ],
)
def test_bucket_index_is_log2_with_inclusive_upper_bounds(value, expected):
    assert _bucket_index(value) == expected


def test_histogram_snapshot_reports_buckets_count_sum_min_max():
    histogram = Histogram()
    for value in (0.5, 1, 3, 9):
        histogram.observe(value)
    snapshot = histogram.snapshot()
    assert snapshot["count"] == 4
    assert snapshot["sum"] == pytest.approx(13.5)
    assert snapshot["min"] == 0.5
    assert snapshot["max"] == 9
    # 0.5 and 1 share bucket <=1; 3 lands in <=4; 9 in <=16.
    assert snapshot["buckets"] == {"1": 2, "4": 1, "16": 1}


def test_empty_histogram_snapshot():
    snapshot = Histogram().snapshot()
    assert snapshot == {"count": 0, "sum": 0.0, "min": None, "max": None, "buckets": {}}


def test_registry_interns_series_by_name_and_labels():
    registry = MetricsRegistry()
    a = registry.counter("mc.checks", engine="bdd")
    b = registry.counter("mc.checks", engine="bdd")
    c = registry.counter("mc.checks", engine="bitset")
    assert a is b
    assert a is not c
    a.inc(2)
    assert registry.counter("mc.checks", engine="bdd").snapshot() == 2
    # Label order never matters: the key is the sorted label set.
    x = registry.gauge("bdd.cache.hits", cache="ite", engine="bdd")
    y = registry.gauge("bdd.cache.hits", engine="bdd", cache="ite")
    assert x is y


def test_registry_snapshot_formats_flat_series_keys():
    registry = MetricsRegistry()
    registry.counter("mc.checks", engine="bdd").inc(3)
    registry.gauge("bdd.live_nodes").set(99)
    registry.histogram("mc.fixpoint.size", op="eu").observe(2)
    snapshot = registry.snapshot()
    assert snapshot["mc.checks{engine=bdd}"] == 3
    assert snapshot["bdd.live_nodes"] == 99
    assert snapshot["mc.fixpoint.size{op=eu}"]["count"] == 1
    assert len(registry) == 3


def test_registry_as_records_is_jsonl_ready():
    registry = MetricsRegistry()
    registry.counter("sat.restarts", engine="bmc").inc()
    [record] = registry.as_records()
    assert record == {
        "kind": "counter",
        "name": "sat.restarts",
        "labels": {"engine": "bmc"},
        "value": 1,
    }


def test_registry_reset_drops_all_series():
    registry = MetricsRegistry()
    registry.counter("a").inc()
    registry.gauge("b").set(1)
    assert len(registry) == 2
    registry.reset()
    assert len(registry) == 0
    assert registry.snapshot() == {}


def test_same_name_different_kinds_do_not_collide():
    registry = MetricsRegistry()
    registry.counter("x").inc(5)
    registry.gauge("x").set(-1)
    # Both series survive storage (the kind is part of the storage key)
    # even though the flat snapshot view would merge them — the naming
    # conventions in docs/OBSERVABILITY.md keep counter and gauge names
    # disjoint precisely so this never happens in practice.
    assert len(registry) == 2
