"""Unit tests for the metrics registry: counters, gauges, histograms.

Pins the export format the CLI (``--profile``/``--metrics``) and the
benchmark suite read: flat ``name{label=value}`` snapshot keys, JSONL
records, and the power-of-two histogram bucketing rule (bucket ``i``
counts observations with ``2**(i-1) < v <= 2**i``).
"""

from __future__ import annotations

import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    _bucket_index,
)


def test_counter_only_goes_up():
    counter = Counter()
    counter.inc()
    counter.inc(5)
    counter.inc(0)
    assert counter.snapshot() == 6
    with pytest.raises(ValueError):
        counter.inc(-1)
    assert counter.snapshot() == 6


def test_gauge_set_and_set_max():
    gauge = Gauge()
    gauge.set(10)
    gauge.set(3)
    assert gauge.snapshot() == 3
    gauge.set_max(7)
    gauge.set_max(5)
    assert gauge.snapshot() == 7


@pytest.mark.parametrize(
    "value,expected",
    [
        (0, 0),
        (0.5, 0),
        (1, 0),
        (1.001, 1),
        (2, 1),
        (3, 2),
        (4, 2),
        (5, 3),
        (8, 3),
        (9, 4),
        (1024, 10),
        (1025, 11),
    ],
)
def test_bucket_index_is_log2_with_inclusive_upper_bounds(value, expected):
    assert _bucket_index(value) == expected


def test_histogram_snapshot_reports_buckets_count_sum_min_max():
    histogram = Histogram()
    for value in (0.5, 1, 3, 9):
        histogram.observe(value)
    snapshot = histogram.snapshot()
    assert snapshot["count"] == 4
    assert snapshot["sum"] == pytest.approx(13.5)
    assert snapshot["min"] == 0.5
    assert snapshot["max"] == 9
    # 0.5 and 1 share bucket <=1; 3 lands in <=4; 9 in <=16.
    assert snapshot["buckets"] == {"1": 2, "4": 1, "16": 1}


def test_empty_histogram_snapshot():
    snapshot = Histogram().snapshot()
    assert snapshot == {
        "count": 0,
        "sum": 0.0,
        "min": None,
        "max": None,
        "p50": None,
        "p90": None,
        "p99": None,
        "buckets": {},
    }


def test_histogram_percentiles_interpolate_inside_log_buckets():
    histogram = Histogram()
    # 100 observations spread over buckets <=16 (50), <=32 (40), <=64 (10).
    for _ in range(50):
        histogram.observe(10)
    for _ in range(40):
        histogram.observe(20)
    for _ in range(9):
        histogram.observe(40)
    histogram.observe(63)
    # p50: rank 50 is exactly the last observation of the <=16 bucket.
    assert histogram.percentile(0.50) == pytest.approx(16.0)
    # p90: rank 90 is the last observation of the <=32 bucket.
    assert histogram.percentile(0.90) == pytest.approx(32.0)
    # p99: rank 99 interpolates 90% into the (32, 64] bucket -> 60.8,
    # inside the observed [min, max] range so no clamping applies.
    assert histogram.percentile(0.99) == pytest.approx(60.8)


def test_histogram_percentiles_clamp_to_observed_range():
    histogram = Histogram()
    histogram.observe(5)  # alone in bucket (4, 8]
    # Every percentile of a single observation is that observation:
    # interpolation would say 4.x-8, clamping pins it to [5, 5].
    assert histogram.percentile(0.50) == 5
    assert histogram.percentile(0.99) == 5
    snapshot = histogram.snapshot()
    assert snapshot["p50"] == 5
    assert snapshot["p90"] == 5
    assert snapshot["p99"] == 5


def test_histogram_merge_adds_buckets_and_widens_min_max():
    ours = Histogram()
    ours.observe(3)
    theirs = Histogram()
    theirs.observe(100)
    theirs.observe(0.5)
    ours.merge(theirs.snapshot())
    snapshot = ours.snapshot()
    assert snapshot["count"] == 3
    assert snapshot["sum"] == pytest.approx(103.5)
    assert snapshot["min"] == 0.5
    assert snapshot["max"] == 100
    assert snapshot["buckets"] == {"1": 1, "4": 1, "128": 1}


def test_histogram_merge_rejects_malformed_snapshots():
    histogram = Histogram()
    with pytest.raises(ValueError):
        histogram.merge({"count": 1, "sum": 1.0, "min": 1, "max": 1, "buckets": {"3": 1}})
    with pytest.raises(ValueError):
        histogram.merge({"count": -1, "sum": 0.0, "min": None, "max": None, "buckets": {}})
    # An empty snapshot merges as a no-op.
    histogram.merge({"count": 0, "sum": 0.0, "min": None, "max": None, "buckets": {}})
    assert histogram.count == 0


def test_merge_records_adds_worker_label_and_skips_malformed():
    source = MetricsRegistry()
    source.counter("sat.conflicts", engine="bmc").inc(7)
    source.gauge("bdd.live_nodes").set(42)
    source.histogram("mc.fixpoint.iterations").observe(3)
    records = source.as_records()
    records.append({"kind": "unknown", "name": "x", "labels": {}, "value": 0})
    records.append({"not even": "a record"})

    target = MetricsRegistry()
    target.counter("sat.conflicts", engine="bmc").inc(1)  # coordinator's own
    merged, skipped = target.merge_records(records, worker="bmc")
    assert (merged, skipped) == (3, 2)
    snapshot = target.snapshot()
    # Merged series carry the worker label, distinct from the local series.
    assert snapshot["sat.conflicts{engine=bmc}"] == 1
    assert snapshot["sat.conflicts{engine=bmc,worker=bmc}"] == 7
    assert snapshot["bdd.live_nodes{worker=bmc}"] == 42
    assert snapshot["mc.fixpoint.iterations{worker=bmc}"]["count"] == 1


def test_merge_records_counters_accumulate_across_snapshots():
    target = MetricsRegistry()
    source = MetricsRegistry()
    source.counter("worker.events").inc(2)
    target.merge_records(source.as_records(), worker="a")
    target.merge_records(source.as_records(), worker="a")
    # Two merges (e.g. two attempts of the same task) add, not overwrite.
    assert target.snapshot()["worker.events{worker=a}"] == 4


def test_registry_interns_series_by_name_and_labels():
    registry = MetricsRegistry()
    a = registry.counter("mc.checks", engine="bdd")
    b = registry.counter("mc.checks", engine="bdd")
    c = registry.counter("mc.checks", engine="bitset")
    assert a is b
    assert a is not c
    a.inc(2)
    assert registry.counter("mc.checks", engine="bdd").snapshot() == 2
    # Label order never matters: the key is the sorted label set.
    x = registry.gauge("bdd.cache.hits", cache="ite", engine="bdd")
    y = registry.gauge("bdd.cache.hits", engine="bdd", cache="ite")
    assert x is y


def test_registry_snapshot_formats_flat_series_keys():
    registry = MetricsRegistry()
    registry.counter("mc.checks", engine="bdd").inc(3)
    registry.gauge("bdd.live_nodes").set(99)
    registry.histogram("mc.fixpoint.size", op="eu").observe(2)
    snapshot = registry.snapshot()
    assert snapshot["mc.checks{engine=bdd}"] == 3
    assert snapshot["bdd.live_nodes"] == 99
    assert snapshot["mc.fixpoint.size{op=eu}"]["count"] == 1
    assert len(registry) == 3


def test_registry_as_records_is_jsonl_ready():
    registry = MetricsRegistry()
    registry.counter("sat.restarts", engine="bmc").inc()
    [record] = registry.as_records()
    assert record == {
        "kind": "counter",
        "name": "sat.restarts",
        "labels": {"engine": "bmc"},
        "value": 1,
    }


def test_registry_reset_drops_all_series():
    registry = MetricsRegistry()
    registry.counter("a").inc()
    registry.gauge("b").set(1)
    assert len(registry) == 2
    registry.reset()
    assert len(registry) == 0
    assert registry.snapshot() == {}


def test_same_name_different_kinds_do_not_collide():
    registry = MetricsRegistry()
    registry.counter("x").inc(5)
    registry.gauge("x").set(-1)
    # Both series survive storage (the kind is part of the storage key)
    # even though the flat snapshot view would merge them — the naming
    # conventions in docs/OBSERVABILITY.md keep counter and gauge names
    # disjoint precisely so this never happens in practice.
    assert len(registry) == 2
