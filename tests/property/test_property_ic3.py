"""Differential property tests: the IC3/PDR engine against the bitset oracle.

Four properties:

* **verdict agreement** — on random total Kripke structures, the IC3 verdict
  for ``AG p`` / ``EF p`` (propositional ``p``) equals the bitset engine's.
  Unlike BMC there is no inconclusive case to filter: IC3 is unbounded, and
  the default frame ceiling is far beyond the diameter of a five-state
  structure;
* **counterexample validity** — every refutation decodes to a genuine path
  of the source structure, from the initial state to a ``¬p`` state;
* **certificate soundness** — every proof's :class:`InvariantCertificate` is
  re-verified here with *fresh* SAT solvers over a freshly built CNF
  transition template: each clause holds initially (initiation), the clause
  set is self-inductive under the transition relation (consecution), and it
  excludes every bad state with a successor (safety);
* **family agreement** — on the mutex protocol (non-buggy and buggy, random
  sizes) IC3 run over the free bit-pattern domain agrees with the bitset
  engine run on the explicit graph.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from strategies import ATOMS, kripke_structures

from repro.kripke.paths import is_path
from repro.logic.ast import And, Atom, Implies, Not, Or
from repro.logic.builders import AG, EF
from repro.mc.bitset import BitsetCTLModelChecker
from repro.mc.bmc import BoundedModelChecker
from repro.mc.ic3 import IC3ModelChecker, _TransitionTemplate
from repro.systems import mutex


@st.composite
def propositional_formulas(draw, max_depth: int = 2):
    """A random propositional formula over ``ATOMS``."""
    if max_depth <= 0:
        return draw(st.sampled_from([Atom(name) for name in ATOMS]))
    choice = draw(st.integers(min_value=0, max_value=4))
    if choice == 0:
        return draw(st.sampled_from([Atom(name) for name in ATOMS]))
    sub = lambda: draw(propositional_formulas(max_depth=max_depth - 1))  # noqa: E731
    if choice == 1:
        return Not(sub())
    if choice == 2:
        return And(sub(), sub())
    if choice == 3:
        return Or(sub(), sub())
    return Implies(sub(), sub())


@given(
    structure=kripke_structures(max_states=5),
    body=propositional_formulas(),
)
@settings(max_examples=60, deadline=None)
def test_ic3_verdicts_agree_with_bitset(structure, body):
    bitset = BitsetCTLModelChecker(structure)
    ic3 = IC3ModelChecker(structure)
    for formula in (AG(body), EF(body)):
        assert ic3.check(formula) == bitset.check(formula), formula


@given(
    structure=kripke_structures(max_states=5),
    body=propositional_formulas(),
)
@settings(max_examples=60, deadline=None)
def test_ic3_counterexamples_decode_to_valid_paths(structure, body):
    checker = IC3ModelChecker(structure)
    if checker.check(AG(body)):
        return
    path = checker.last_counterexample
    assert path is not None
    assert path[0] == structure.initial_state
    assert is_path(structure, path)
    oracle = BitsetCTLModelChecker(structure)
    assert not oracle.check(body, state=path[-1])


@given(
    structure=kripke_structures(max_states=5),
    body=propositional_formulas(),
)
@settings(max_examples=60, deadline=None)
def test_ic3_certificates_reverify_with_fresh_solvers(structure, body):
    checker = IC3ModelChecker(structure)
    if not checker.check(AG(body)):
        return
    certificate = checker.certificate
    assert certificate is not None
    symbolic = checker.symbolic
    template = _TransitionTemplate(symbolic)
    num_bits = symbolic.num_bits

    def primed(literal):
        return literal + num_bits if literal > 0 else literal - num_bits

    # Initiation: no certificate clause excludes an initial state.
    init_solver = template.new_solver()
    init_literal = template.encode_state_set(init_solver, symbolic.initial, {})
    init_solver.add_clause((init_literal,))
    for cube in certificate.cubes:
        assert not init_solver.solve(list(cube)), "initiation violated"

    # Consecution: the clause set is self-inductive under the CNF transition
    # relation — and safety: it excludes every bad state with a successor.
    consecution = template.new_solver()
    for cube in certificate.cubes:
        consecution.add_clause(tuple(-literal for literal in cube))
    for cube in certificate.cubes:
        assert not consecution.solve(
            [primed(literal) for literal in cube]
        ), "consecution violated"
    front = BoundedModelChecker(structure, validate_structure=False)
    property_fn = front._propositional_node(body)
    bad_fn = symbolic.function(symbolic.complement(property_fn.node))
    bad_literal = template.encode_state_set(consecution, bad_fn.node, {})
    assert not consecution.solve([bad_literal]), "safety violated"


@given(
    size=st.integers(min_value=1, max_value=4),
    buggy=st.booleans(),
)
@settings(max_examples=20, deadline=None)
def test_ic3_agrees_with_bitset_on_the_mutex_family(size, buggy):
    explicit = mutex.build_mutex(size, buggy=buggy)
    oracle = BitsetCTLModelChecker(explicit)
    symbolic = mutex.symbolic_mutex(size, buggy=buggy, domain="free")
    checker = IC3ModelChecker(symbolic)
    formula = mutex.mutex_safety(size)
    assert checker.check(formula) == oracle.check(formula)
