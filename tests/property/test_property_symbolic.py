"""Differential property tests: the symbolic BDD engine against the others.

Random total Kripke structures and random CTL formulas must yield identical
satisfaction sets from :class:`SymbolicCTLModelChecker`, the compiled bitset
engine, and the naive frozenset oracle — ``crosscheck_ctl_engines`` now
replays every formula through all three.  Further properties pin down the
symbolic representation itself: complements are taken relative to the domain,
satisfy-counts match set cardinalities, the encoding round-trips states, and
— since the dynamic-reordering core — sifting (`BDDManager.reorder`) must
preserve the semantics of every satisfaction set, sat-count, and engine
verdict, before and after the reorder, on both previously computed handles
and freshly computed ones.
"""

from hypothesis import given, settings

from strategies import ctl_formulas, kripke_structures

from repro.kripke.symbolic import symbolic_structure
from repro.logic.ast import (
    Atom,
    Exists,
    ForAll,
    Next,
    Not,
    Release,
    WeakUntil,
)
from repro.mc.bitset import BitsetCTLModelChecker
from repro.mc.ctl import CTLModelChecker
from repro.mc.oracle import crosscheck_ctl_engines
from repro.mc.symbolic import SymbolicCTLModelChecker


@given(structure=kripke_structures(), formula=ctl_formulas(max_depth=3))
@settings(max_examples=100, deadline=None)
def test_symbolic_and_naive_satisfaction_sets_agree(structure, formula):
    symbolic = SymbolicCTLModelChecker(structure)
    naive = CTLModelChecker(structure)
    assert symbolic.satisfaction_set(formula) == naive.satisfaction_set(formula)


@given(structure=kripke_structures(), formula=ctl_formulas(max_depth=2))
@settings(max_examples=50, deadline=None)
def test_crosscheck_replays_all_three_engines(structure, formula):
    # The helper raises on any pairwise disagreement, so surviving it is the
    # property; it must also still agree with a fresh bitset run.
    result = crosscheck_ctl_engines(structure, formula)
    assert result == BitsetCTLModelChecker(structure).satisfaction_set(formula)


@given(structure=kripke_structures(), formula=ctl_formulas(max_depth=2))
@settings(max_examples=50, deadline=None)
def test_symbolic_agrees_on_next_and_release_closures(structure, formula):
    """Exercise the operators the random CTL strategy never emits."""
    symbolic = SymbolicCTLModelChecker(structure)
    naive = CTLModelChecker(structure)
    probe = Atom("p")
    for wrapped in [
        Exists(Next(formula)),
        ForAll(Next(formula)),
        Exists(Release(probe, formula)),
        ForAll(Release(probe, formula)),
        Exists(WeakUntil(formula, probe)),
        ForAll(WeakUntil(formula, probe)),
    ]:
        assert symbolic.satisfaction_set(wrapped) == naive.satisfaction_set(wrapped)


@given(structure=kripke_structures(), formula=ctl_formulas(max_depth=2))
@settings(max_examples=50, deadline=None)
def test_symbolic_negation_is_domain_complement(structure, formula):
    checker = SymbolicCTLModelChecker(structure)
    manager = checker.symbolic.manager
    node = checker.satisfaction_node(formula)
    complement = checker.satisfaction_node(Not(formula))
    assert manager.apply_and(node, complement) == 0
    assert manager.apply_or(node, complement) == checker.symbolic.domain
    assert checker.satisfy_count(formula) + checker.satisfy_count(Not(formula)) == (
        structure.num_states
    )


@given(structure=kripke_structures(), formula=ctl_formulas(max_depth=2))
@settings(max_examples=50, deadline=None)
def test_satisfy_count_matches_set_cardinality(structure, formula):
    checker = SymbolicCTLModelChecker(structure)
    assert checker.satisfy_count(formula) == len(checker.satisfaction_set(formula))


@given(structure=kripke_structures(), formula=ctl_formulas(max_depth=3))
@settings(max_examples=75, deadline=None)
def test_reorder_preserves_satisfaction_semantics(structure, formula):
    """Sifting must be invisible to every engine-visible answer.

    Satisfaction sets, sat-counts, and the initial-state verdict of random
    formulas are recorded, the manager is sifted, and everything is
    re-checked three ways: the *old* handles still decode identically, a
    *fresh* checker on the reordered encoding recomputes the same answers,
    and both still agree with the naive and bitset engines.
    """
    checker = SymbolicCTLModelChecker(structure)
    manager = checker.symbolic.manager
    before_set = checker.satisfaction_set(formula)
    before_count = checker.satisfy_count(formula)
    before_verdict = checker.check(formula)

    live_after = manager.reorder()
    assert live_after == len(manager)

    # The memoised handles survive the reorder with identical semantics.
    assert checker.satisfaction_set(formula) == before_set
    assert checker.satisfy_count(formula) == before_count
    assert checker.check(formula) == before_verdict

    # A fresh computation on the reordered encoding agrees too.
    fresh = SymbolicCTLModelChecker(checker.symbolic)
    assert fresh.satisfaction_set(formula) == before_set
    assert fresh.satisfy_count(formula) == before_count

    # And the reordered symbolic engine still matches the explicit engines.
    assert before_set == CTLModelChecker(structure).satisfaction_set(formula)
    assert before_set == BitsetCTLModelChecker(structure).satisfaction_set(formula)


@given(structure=kripke_structures(), formula=ctl_formulas(max_depth=2))
@settings(max_examples=30, deadline=None)
def test_reorder_between_computations_is_sound(structure, formula):
    """Reordering *before* a formula is ever computed must change nothing."""
    baseline = CTLModelChecker(structure).satisfaction_set(formula)
    checker = SymbolicCTLModelChecker(structure)
    checker.symbolic.manager.reorder()
    assert checker.satisfaction_set(formula) == baseline
    checker.symbolic.manager.reorder()
    assert checker.satisfaction_set(Not(formula)) == structure.states - baseline


@given(structure=kripke_structures())
@settings(max_examples=50, deadline=None)
def test_symbolic_encoding_matches_source(structure):
    encoded = symbolic_structure(structure)
    assert encoded.num_states == structure.num_states
    assert encoded.num_transitions == structure.num_transitions
    assert encoded.is_total()
    assert encoded.states_of(encoded.domain) == structure.states
    assert encoded.states_of(encoded.reachable()) <= structure.states
    for state in structure.states:
        # The pre-image of {state} is exactly its predecessor set.
        singleton = encoded.manager.cube(encoded.encode_state(state))
        assert encoded.states_of(encoded.preimage(singleton)) == structure.predecessors(
            state
        )
