"""Differential property tests: the symbolic BDD engine against the others.

Random total Kripke structures and random CTL formulas must yield identical
satisfaction sets from :class:`SymbolicCTLModelChecker`, the compiled bitset
engine, and the naive frozenset oracle — ``crosscheck_ctl_engines`` now
replays every formula through all three.  Further properties pin down the
symbolic representation itself: complements are taken relative to the domain,
satisfy-counts match set cardinalities, and the encoding round-trips states.
"""

from hypothesis import given, settings

from strategies import ctl_formulas, kripke_structures

from repro.kripke.symbolic import symbolic_structure
from repro.logic.ast import (
    Atom,
    Exists,
    ForAll,
    Next,
    Not,
    Release,
    WeakUntil,
)
from repro.mc.bitset import BitsetCTLModelChecker
from repro.mc.ctl import CTLModelChecker
from repro.mc.oracle import crosscheck_ctl_engines
from repro.mc.symbolic import SymbolicCTLModelChecker


@given(structure=kripke_structures(), formula=ctl_formulas(max_depth=3))
@settings(max_examples=100, deadline=None)
def test_symbolic_and_naive_satisfaction_sets_agree(structure, formula):
    symbolic = SymbolicCTLModelChecker(structure)
    naive = CTLModelChecker(structure)
    assert symbolic.satisfaction_set(formula) == naive.satisfaction_set(formula)


@given(structure=kripke_structures(), formula=ctl_formulas(max_depth=2))
@settings(max_examples=50, deadline=None)
def test_crosscheck_replays_all_three_engines(structure, formula):
    # The helper raises on any pairwise disagreement, so surviving it is the
    # property; it must also still agree with a fresh bitset run.
    result = crosscheck_ctl_engines(structure, formula)
    assert result == BitsetCTLModelChecker(structure).satisfaction_set(formula)


@given(structure=kripke_structures(), formula=ctl_formulas(max_depth=2))
@settings(max_examples=50, deadline=None)
def test_symbolic_agrees_on_next_and_release_closures(structure, formula):
    """Exercise the operators the random CTL strategy never emits."""
    symbolic = SymbolicCTLModelChecker(structure)
    naive = CTLModelChecker(structure)
    probe = Atom("p")
    for wrapped in [
        Exists(Next(formula)),
        ForAll(Next(formula)),
        Exists(Release(probe, formula)),
        ForAll(Release(probe, formula)),
        Exists(WeakUntil(formula, probe)),
        ForAll(WeakUntil(formula, probe)),
    ]:
        assert symbolic.satisfaction_set(wrapped) == naive.satisfaction_set(wrapped)


@given(structure=kripke_structures(), formula=ctl_formulas(max_depth=2))
@settings(max_examples=50, deadline=None)
def test_symbolic_negation_is_domain_complement(structure, formula):
    checker = SymbolicCTLModelChecker(structure)
    manager = checker.symbolic.manager
    node = checker.satisfaction_node(formula)
    complement = checker.satisfaction_node(Not(formula))
    assert manager.apply_and(node, complement) == 0
    assert manager.apply_or(node, complement) == checker.symbolic.domain
    assert checker.satisfy_count(formula) + checker.satisfy_count(Not(formula)) == (
        structure.num_states
    )


@given(structure=kripke_structures(), formula=ctl_formulas(max_depth=2))
@settings(max_examples=50, deadline=None)
def test_satisfy_count_matches_set_cardinality(structure, formula):
    checker = SymbolicCTLModelChecker(structure)
    assert checker.satisfy_count(formula) == len(checker.satisfaction_set(formula))


@given(structure=kripke_structures())
@settings(max_examples=50, deadline=None)
def test_symbolic_encoding_matches_source(structure):
    encoded = symbolic_structure(structure)
    assert encoded.num_states == structure.num_states
    assert encoded.num_transitions == structure.num_transitions
    assert encoded.is_total()
    assert encoded.states_of(encoded.domain) == structure.states
    assert encoded.states_of(encoded.reachable()) <= structure.states
    for state in structure.states:
        # The pre-image of {state} is exactly its predecessor set.
        singleton = encoded.manager.cube(encoded.encode_state(state))
        assert encoded.states_of(encoded.preimage(singleton)) == structure.predecessors(
            state
        )
