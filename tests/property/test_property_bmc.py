"""Differential property tests: the BMC engine against explicit bounded reachability.

Three properties over random total Kripke structures:

* **bounded agreement** — BMC falsification of ``AG p`` at bound ``k`` finds
  a counterexample iff breadth-first search from the initial state reaches a
  ``¬p`` state within ``k`` steps (the bitset engine's compiled adjacency is
  the oracle's transition source);
* **path validity** — every SAT counterexample decodes to a genuine path of
  the source structure, starting at the initial state, ending in a ``¬p``
  state, of exactly the BFS distance (BMC scans depths in order, so its
  counterexamples are depth-minimal);
* **verdict agreement** — on the decidable fragment (``AG``/``EF`` over
  propositional bodies, where bound ≥ structure diameter makes BMC
  complete-for-falsification and k-induction complete via simple paths) the
  BMC verdict equals the bitset engine's.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from strategies import ATOMS, kripke_structures

from repro.errors import InconclusiveError
from repro.kripke.compiled import compile_structure
from repro.kripke.paths import is_path
from repro.logic.ast import And, Atom, Implies, Not, Or
from repro.logic.builders import AG, EF
from repro.mc.bitset import BitsetCTLModelChecker
from repro.mc.bmc import BoundedModelChecker


@st.composite
def propositional_formulas(draw, max_depth: int = 2):
    """A random propositional formula over ``ATOMS``."""
    if max_depth <= 0:
        return draw(st.sampled_from([Atom(name) for name in ATOMS]))
    choice = draw(st.integers(min_value=0, max_value=4))
    if choice == 0:
        return draw(st.sampled_from([Atom(name) for name in ATOMS]))
    sub = lambda: draw(propositional_formulas(max_depth=max_depth - 1))  # noqa: E731
    if choice == 1:
        return Not(sub())
    if choice == 2:
        return And(sub(), sub())
    if choice == 3:
        return Or(sub(), sub())
    return Implies(sub(), sub())


def _bad_distance(structure, body, limit):
    """BFS depth of the nearest ``¬body`` state from the initial state, or None."""
    compiled = compile_structure(structure)
    checker = BitsetCTLModelChecker(compiled, validate_structure=False)
    good = checker.satisfaction_mask(body)
    frontier = {compiled.initial_index}
    seen = set(frontier)
    for depth in range(limit + 1):
        if any(not good >> index & 1 for index in frontier):
            return depth
        fresh = set()
        for index in frontier:
            for target in compiled.successors_of(index):
                if target not in seen:
                    seen.add(target)
                    fresh.add(target)
        if not fresh:
            return None
        frontier = fresh
    return None


@given(
    structure=kripke_structures(max_states=5),
    body=propositional_formulas(),
    bound=st.integers(min_value=0, max_value=4),
)
@settings(max_examples=60, deadline=None)
def test_bmc_at_bound_k_agrees_with_bounded_reachability(structure, body, bound):
    checker = BoundedModelChecker(structure, bound=bound, validate_structure=False)
    path = checker.invariant_counterexample(body)
    distance = _bad_distance(structure, body, bound)
    if distance is None:
        assert path is None
    else:
        assert path is not None
        assert len(path) - 1 == distance  # depth-minimal, like the BFS oracle


@given(
    structure=kripke_structures(max_states=5),
    body=propositional_formulas(),
)
@settings(max_examples=60, deadline=None)
def test_bmc_counterexamples_decode_to_valid_paths(structure, body):
    checker = BoundedModelChecker(structure, bound=6, validate_structure=False)
    path = checker.invariant_counterexample(body)
    if path is None:
        return
    assert path[0] == structure.initial_state
    assert is_path(structure, path)
    oracle = BitsetCTLModelChecker(structure)
    assert not oracle.check(body, state=path[-1])


@given(
    structure=kripke_structures(max_states=4),
    body=propositional_formulas(max_depth=1),
)
@settings(max_examples=60, deadline=None)
def test_bmc_verdicts_agree_with_bitset_when_conclusive(structure, body):
    """With bound ≥ |S| both the base scan and simple-path induction saturate."""
    bitset = BitsetCTLModelChecker(structure)
    bmc = BoundedModelChecker(structure, bound=structure.num_states + 1)
    for formula in (AG(body), EF(body)):
        try:
            verdict = bmc.check(formula)
        except InconclusiveError:
            continue  # the bound can still be exhausted on AG proofs; never wrong
        assert verdict == bitset.check(formula), formula
