"""Property-based tests for the correspondence machinery.

The key empirical validation of the paper's Theorem 2: whenever the decision
algorithm says two structures correspond, every next-free CTL* formula we can
generate agrees on their initial states; and structures obtained from one
another by *stuttering expansion* (splitting a state into a short chain of
identically-labelled states) always correspond.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from strategies import ctl_formulas, ctlstar_path_formulas, kripke_structures

from repro.kripke.structure import KripkeStructure
from repro.logic.ast import Exists
from repro.mc.ctlstar import CTLStarModelChecker
from repro.correspondence.blocks import blocks_correspond, corresponding_path
from repro.correspondence.check import find_correspondence
from repro.correspondence.definition import is_correspondence


def stutter_expand(structure: KripkeStructure, state_to_split, seed: int = 0) -> KripkeStructure:
    """Split ``state_to_split`` into a two-state chain with the same label."""
    part_a = ("split", state_to_split, "a")
    part_b = ("split", state_to_split, "b")
    states = [s for s in structure.states if s != state_to_split] + [part_a, part_b]
    transitions = []
    for source, target in structure.transition_pairs():
        new_source = part_b if source == state_to_split else source
        new_target = part_a if target == state_to_split else target
        transitions.append((new_source, new_target))
    transitions.append((part_a, part_b))
    labeling = {
        state: structure.label(state) for state in structure.states if state != state_to_split
    }
    labeling[part_a] = structure.label(state_to_split)
    labeling[part_b] = structure.label(state_to_split)
    initial = (
        part_a if structure.initial_state == state_to_split else structure.initial_state
    )
    return KripkeStructure(states, transitions, labeling, initial, name="stuttered")


@given(structure=kripke_structures())
@settings(max_examples=40, deadline=None)
def test_every_structure_corresponds_to_itself_with_identity(structure):
    relation = find_correspondence(structure, structure)
    assert relation is not None
    for state in structure.states:
        assert relation.degree_or_none(state, state) == 0
    assert is_correspondence(structure, structure, relation)


@given(structure=kripke_structures(), data=st.data())
@settings(max_examples=40, deadline=None)
def test_stutter_expansion_preserves_correspondence(structure, data):
    state = data.draw(st.sampled_from(sorted(structure.states, key=repr)))
    expanded = stutter_expand(structure, state)
    relation = find_correspondence(structure, expanded)
    assert relation is not None
    assert is_correspondence(structure, expanded, relation)


@given(structure=kripke_structures(), data=st.data(), formula=ctl_formulas(max_depth=2))
@settings(max_examples=30, deadline=None)
def test_corresponding_structures_satisfy_the_same_next_free_formulas(structure, data, formula):
    state = data.draw(st.sampled_from(sorted(structure.states, key=repr)))
    expanded = stutter_expand(structure, state)
    left = CTLStarModelChecker(structure)
    right = CTLStarModelChecker(expanded)
    assert left.check(formula) == right.check(formula)


@given(
    structure=kripke_structures(),
    data=st.data(),
    path_formula=ctlstar_path_formulas(max_depth=2),
)
@settings(max_examples=30, deadline=None)
def test_corresponding_structures_agree_on_path_quantified_formulas(structure, data, path_formula):
    state = data.draw(st.sampled_from(sorted(structure.states, key=repr)))
    expanded = stutter_expand(structure, state)
    formula = Exists(path_formula)
    assert CTLStarModelChecker(structure).check(formula) == CTLStarModelChecker(expanded).check(
        formula
    )


@given(structure=kripke_structures(min_states=2), data=st.data())
@settings(max_examples=30, deadline=None)
def test_decision_algorithm_output_always_satisfies_the_definition(structure, data):
    other = data.draw(kripke_structures())
    relation = find_correspondence(structure, other)
    if relation is not None:
        assert is_correspondence(structure, other, relation)


@given(structure=kripke_structures(min_states=2), data=st.data())
@settings(max_examples=25, deadline=None)
def test_lemma1_block_matching_for_random_paths(structure, data):
    state = data.draw(st.sampled_from(sorted(structure.states, key=repr)))
    expanded = stutter_expand(structure, state)
    relation = find_correspondence(structure, expanded)
    assert relation is not None
    rng = random.Random(data.draw(st.integers(min_value=0, max_value=1000)))
    # Random finite path of the left structure starting at its initial state.
    path = [structure.initial_state]
    for _ in range(data.draw(st.integers(min_value=0, max_value=5))):
        path.append(rng.choice(sorted(structure.successors(path[-1]), key=repr)))
    matching = corresponding_path(structure, expanded, relation, path)
    assert matching.left_path == tuple(path)
    assert blocks_correspond(relation, matching)
    from repro.kripke.paths import is_path

    assert is_path(expanded, list(matching.right_path))
