"""Hypothesis strategies shared by the property-based tests.

Two families of strategies are provided: random total Kripke structures over a
small alphabet of atomic propositions, and random formulas (CTL and next-free
CTL*) over the same alphabet.
"""

from __future__ import annotations

from hypothesis import strategies as st

from repro.kripke.structure import KripkeStructure
from repro.logic.ast import (
    And,
    Atom,
    Exists,
    Finally,
    ForAll,
    Globally,
    Implies,
    Next,
    Not,
    Or,
    TrueLiteral,
    Until,
)

ATOMS = ("p", "q", "r")


@st.composite
def kripke_structures(draw, min_states: int = 1, max_states: int = 5):
    """A random total Kripke structure labelled over ``ATOMS``."""
    size = draw(st.integers(min_value=min_states, max_value=max_states))
    states = list(range(size))
    labeling = {
        state: draw(st.sets(st.sampled_from(ATOMS), max_size=len(ATOMS))) for state in states
    }
    transitions = []
    for state in states:
        targets = draw(
            st.sets(st.sampled_from(states), min_size=1, max_size=size)
        )
        transitions.extend((state, target) for target in targets)
    initial = draw(st.sampled_from(states))
    return KripkeStructure(states, transitions, labeling, initial, name="random")


def _atomic():
    return st.one_of(st.sampled_from([Atom(name) for name in ATOMS]), st.just(TrueLiteral()))


@st.composite
def ctl_formulas(draw, max_depth: int = 3):
    """A random CTL state formula over ``ATOMS`` (next-free)."""
    if max_depth <= 0:
        return draw(_atomic())
    choice = draw(st.integers(min_value=0, max_value=8))
    if choice == 0:
        return draw(_atomic())
    sub = lambda: draw(ctl_formulas(max_depth=max_depth - 1))  # noqa: E731
    if choice == 1:
        return Not(sub())
    if choice == 2:
        return And(sub(), sub())
    if choice == 3:
        return Or(sub(), sub())
    if choice == 4:
        return Implies(sub(), sub())
    if choice == 5:
        return Exists(Until(sub(), sub()))
    if choice == 6:
        return ForAll(Until(sub(), sub()))
    if choice == 7:
        return Exists(Globally(sub()))
    return ForAll(Finally(sub()))


@st.composite
def ctlstar_path_formulas(draw, max_depth: int = 2, allow_next: bool = False):
    """A random pure path formula (LTL shape) over ``ATOMS``."""
    if max_depth <= 0:
        return draw(_atomic())
    choice = draw(st.integers(min_value=0, max_value=7 if allow_next else 6))
    if choice == 0:
        return draw(_atomic())
    sub = lambda: draw(  # noqa: E731
        ctlstar_path_formulas(max_depth=max_depth - 1, allow_next=allow_next)
    )
    if choice == 1:
        return Not(sub())
    if choice == 2:
        return And(sub(), sub())
    if choice == 3:
        return Or(sub(), sub())
    if choice == 4:
        return Until(sub(), sub())
    if choice == 5:
        return Finally(sub())
    if choice == 6:
        return Globally(sub())
    return Next(sub())
