"""Property-based tests for the token ring and the ICTL* layer."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.logic.ast import IndexExists, Not
from repro.logic.builders import AF, AG, EF, iatom, implies, index_exists, index_forall
from repro.logic.transform import instantiate_quantifiers, substitute_index
from repro.mc.indexed import ICTLStarModelChecker
from repro.systems.token_ring import (
    RingState,
    build_token_ring,
    initial_state,
    partition_invariant_holds,
    rank,
    ring_successors,
    state_label,
)

_RING_CACHE = {}


def _ring(size):
    if size not in _RING_CACHE:
        _RING_CACHE[size] = build_token_ring(size)
    return _RING_CACHE[size]


@given(size=st.integers(min_value=1, max_value=5), steps=st.integers(min_value=0, max_value=40), seed=st.integers(0, 10_000))
@settings(max_examples=40, deadline=None)
def test_random_walks_preserve_the_partition_invariant(size, steps, seed):
    import random

    rng = random.Random(seed)
    state = initial_state(size)
    indices = set(range(1, size + 1))
    for _ in range(steps):
        union = state.delayed | state.neutral | state.token_neutral | state.critical
        assert union == indices
        assert not state.other
        assert len(state.token_neutral | state.critical) == 1
        successors = ring_successors(state, size)
        assert successors, "reachable ring states always have a successor"
        state = rng.choice(successors)


@given(size=st.integers(min_value=2, max_value=4))
@settings(max_examples=6, deadline=None)
def test_every_reachable_state_has_consistent_labels(size):
    structure = _ring(size)
    for state in structure.states:
        label = state_label(state)
        assert label == structure.label(state)
        # t_i is carried exactly by the token holder.
        holders = {prop.index for prop in label if prop.name == "t"}
        assert holders == {state.token_holder()}


@given(size=st.integers(min_value=2, max_value=4))
@settings(max_examples=6, deadline=None)
def test_partition_invariant_holds_for_built_rings(size):
    assert partition_invariant_holds(_ring(size))


@given(size=st.integers(min_value=2, max_value=4), index=st.integers(min_value=1, max_value=4))
@settings(max_examples=20, deadline=None)
def test_ranks_are_nonnegative_and_bounded(size, index):
    if index > size:
        return
    structure = _ring(size)
    for state in structure.states:
        value = rank(state, index, size)
        assert value >= 0
        # A very generous bound: every idle run is shorter than 3 · r.
        assert value <= 3 * size


@given(size=st.integers(min_value=2, max_value=3), value=st.integers(min_value=1, max_value=3))
@settings(max_examples=15, deadline=None)
def test_index_exists_is_disjunction_of_instances(size, value):
    if value > size:
        return
    structure = _ring(size)
    checker = ICTLStarModelChecker(structure, enforce_restrictions=False)
    body = EF(iatom("c", "i"))
    quantified = index_exists("i", body)
    instantiated = instantiate_quantifiers(quantified, structure.index_values)
    assert checker.satisfaction_set(quantified) == checker.satisfaction_set(instantiated)
    single = substitute_index(body, "i", value)
    assert checker.satisfaction_set(single) <= checker.satisfaction_set(quantified)


@given(size=st.integers(min_value=2, max_value=3))
@settings(max_examples=6, deadline=None)
def test_index_forall_dual_of_index_exists(size):
    structure = _ring(size)
    checker = ICTLStarModelChecker(structure, enforce_restrictions=False)
    body = AG(implies(iatom("d", "i"), AF(iatom("c", "i"))))
    forall = index_forall("i", body)
    dual = Not(IndexExists("i", Not(body)))
    assert checker.satisfaction_set(forall) == checker.satisfaction_set(dual)


@given(size=st.integers(min_value=1, max_value=4), steps=st.integers(min_value=1, max_value=30), seed=st.integers(0, 10_000))
@settings(max_examples=30, deadline=None)
def test_successor_states_differ_from_their_source(size, steps, seed):
    import random

    rng = random.Random(seed)
    state = initial_state(size)
    for _ in range(steps):
        successors = ring_successors(state, size)
        assert all(isinstance(successor, RingState) for successor in successors)
        assert all(successor != state for successor in successors)
        state = rng.choice(successors)
