"""Differential property tests: the bitset engine against the naive oracle.

Random total Kripke structures and random CTL formulas must yield identical
satisfaction sets from :class:`BitsetCTLModelChecker` and the frozenset-based
:class:`CTLModelChecker` — the naive checker is the differential-testing
oracle for the compiled engine.
"""

from hypothesis import given, settings

from strategies import ctl_formulas, kripke_structures

from repro.kripke.compiled import compile_structure, popcount
from repro.logic.ast import (
    Atom,
    Exists,
    Finally,
    ForAll,
    Globally,
    Next,
    Not,
    Release,
    TrueLiteral,
    Until,
    WeakUntil,
)
from repro.mc.bitset import BitsetCTLModelChecker
from repro.mc.ctl import CTLModelChecker
from repro.mc.oracle import crosscheck_ctl_engines


@given(structure=kripke_structures(), formula=ctl_formulas(max_depth=3))
@settings(max_examples=100, deadline=None)
def test_bitset_and_naive_satisfaction_sets_agree(structure, formula):
    fast = BitsetCTLModelChecker(structure)
    naive = CTLModelChecker(structure)
    assert fast.satisfaction_set(formula) == naive.satisfaction_set(formula)


@given(structure=kripke_structures(), formula=ctl_formulas(max_depth=2))
@settings(max_examples=50, deadline=None)
def test_crosscheck_helper_accepts_random_inputs(structure, formula):
    # The helper raises on any disagreement, so surviving it is the property.
    result = crosscheck_ctl_engines(structure, formula)
    assert result == CTLModelChecker(structure).satisfaction_set(formula)


@given(structure=kripke_structures(), formula=ctl_formulas(max_depth=2))
@settings(max_examples=50, deadline=None)
def test_bitset_agrees_on_next_and_release_closures(structure, formula):
    """Exercise the operators the random CTL strategy never emits."""
    fast = BitsetCTLModelChecker(structure)
    naive = CTLModelChecker(structure)
    probe = Atom("p")
    for wrapped in [
        Exists(Next(formula)),
        ForAll(Next(formula)),
        Exists(Release(probe, formula)),
        ForAll(Release(probe, formula)),
        Exists(WeakUntil(formula, probe)),
        ForAll(WeakUntil(formula, probe)),
    ]:
        assert fast.satisfaction_set(wrapped) == naive.satisfaction_set(wrapped)


@given(structure=kripke_structures(), formula=ctl_formulas(max_depth=2))
@settings(max_examples=50, deadline=None)
def test_bitset_negation_is_mask_complement(structure, formula):
    checker = BitsetCTLModelChecker(structure)
    compiled = checker.compiled
    mask = checker.satisfaction_mask(formula)
    complement = checker.satisfaction_mask(Not(formula))
    assert mask & complement == 0
    assert mask | complement == compiled.all_mask
    assert popcount(mask) + popcount(complement) == compiled.num_states


@given(structure=kripke_structures(), formula=ctl_formulas(max_depth=1))
@settings(max_examples=50, deadline=None)
def test_bitset_dualities(structure, formula):
    checker = BitsetCTLModelChecker(structure)
    everything = checker.compiled.all_mask
    assert checker.satisfaction_mask(
        ForAll(Globally(formula))
    ) == everything & ~checker.satisfaction_mask(Exists(Finally(Not(formula))))
    assert checker.satisfaction_mask(
        Exists(Finally(formula))
    ) == checker.satisfaction_mask(Exists(Until(TrueLiteral(), formula)))


@given(structure=kripke_structures())
@settings(max_examples=50, deadline=None)
def test_compiled_adjacency_matches_source(structure):
    compiled = compile_structure(structure)
    for state in structure.states:
        index = compiled.index_of(state)
        assert compiled.states_of(compiled.successor_mask(index)) == structure.successors(state)
        assert compiled.states_of(compiled.predecessor_mask(index)) == structure.predecessors(
            state
        )
