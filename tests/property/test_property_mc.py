"""Property-based tests cross-validating the model checkers against each other."""

from hypothesis import given, settings

from strategies import ctl_formulas, ctlstar_path_formulas, kripke_structures

from repro.logic.ast import Exists, Finally, ForAll, Globally, Not, Until
from repro.mc.ctl import CTLModelChecker
from repro.mc.ctlstar import CTLStarModelChecker
from repro.mc.ltl import existential_states
from repro.mc.oracle import simple_lasso_exists


@given(structure=kripke_structures(), formula=ctl_formulas(max_depth=2))
@settings(max_examples=50, deadline=None)
def test_ctl_and_ctlstar_checkers_agree_on_ctl(structure, formula):
    ctl = CTLModelChecker(structure)
    star = CTLStarModelChecker(structure, use_ctl_fast_path=False)
    assert ctl.satisfaction_set(formula) == star.satisfaction_set(formula)


@given(structure=kripke_structures(), formula=ctl_formulas(max_depth=2))
@settings(max_examples=40, deadline=None)
def test_ctl_negation_is_set_complement(structure, formula):
    checker = CTLModelChecker(structure)
    assert checker.satisfaction_set(Not(formula)) == structure.states - checker.satisfaction_set(
        formula
    )


@given(structure=kripke_structures(), formula=ctl_formulas(max_depth=1))
@settings(max_examples=40, deadline=None)
def test_ctl_dualities(structure, formula):
    checker = CTLModelChecker(structure)
    states = structure.states
    assert checker.satisfaction_set(ForAll(Globally(formula))) == states - checker.satisfaction_set(
        Exists(Finally(Not(formula)))
    )
    assert checker.satisfaction_set(ForAll(Finally(formula))) == states - checker.satisfaction_set(
        Exists(Globally(Not(formula)))
    )


@given(structure=kripke_structures(), formula=ctlstar_path_formulas(max_depth=2))
@settings(max_examples=40, deadline=None)
def test_ef_of_path_witnesses_imply_until_form(structure, formula):
    # E F g  ≡  E (true U g) for the LTL core.
    from repro.logic.ast import TrueLiteral

    direct = existential_states(structure, Finally(formula))
    via_until = existential_states(structure, Until(TrueLiteral(), formula))
    assert direct == via_until


@given(structure=kripke_structures(max_states=4), formula=ctlstar_path_formulas(max_depth=2))
@settings(max_examples=40, deadline=None)
def test_simple_lasso_witness_implies_existential(structure, formula):
    exists = existential_states(structure, formula)
    for state in structure.states:
        if simple_lasso_exists(structure, state, formula):
            assert state in exists


@given(structure=kripke_structures(max_states=4), formula=ctl_formulas(max_depth=2))
@settings(max_examples=30, deadline=None)
def test_ctl_satisfaction_stable_under_reachable_restriction(structure, formula):
    from repro.kripke.reachable import reachable_states, restrict_to_reachable

    checker = CTLModelChecker(structure)
    restricted = restrict_to_reachable(structure)
    restricted_checker = CTLModelChecker(restricted)
    reachable = reachable_states(structure)
    # CTL truth only depends on the reachable part of the structure *from the
    # initial state*; the two checkers must agree there.
    assert (structure.initial_state in checker.satisfaction_set(formula)) == (
        restricted.initial_state in restricted_checker.satisfaction_set(formula)
    )
    assert reachable == restricted.states
