"""Property-based tests for the logic layer (parser round-trips, NNF, expansion)."""

from hypothesis import given, settings

from strategies import ctl_formulas, ctlstar_path_formulas, kripke_structures

from repro.logic.ast import Exists, Not
from repro.logic.parser import parse
from repro.logic.printer import format_formula
from repro.logic.syntax import is_state_formula
from repro.logic.transform import expand, negation_normal_form
from repro.mc.ctlstar import CTLStarModelChecker


@given(formula=ctl_formulas())
@settings(max_examples=60, deadline=None)
def test_print_parse_round_trip(formula):
    assert parse(format_formula(formula)) == formula


@given(formula=ctlstar_path_formulas(allow_next=True))
@settings(max_examples=60, deadline=None)
def test_print_parse_round_trip_path_formulas(formula):
    assert parse(format_formula(formula)) == formula


@given(formula=ctl_formulas())
@settings(max_examples=60, deadline=None)
def test_generated_ctl_formulas_are_state_formulas(formula):
    assert is_state_formula(formula)


@given(structure=kripke_structures(), formula=ctl_formulas(max_depth=2))
@settings(max_examples=40, deadline=None)
def test_expand_preserves_satisfaction(structure, formula):
    checker = CTLStarModelChecker(structure)
    assert checker.satisfaction_set(formula) == checker.satisfaction_set(expand(formula))


@given(structure=kripke_structures(), formula=ctl_formulas(max_depth=2))
@settings(max_examples=40, deadline=None)
def test_nnf_preserves_satisfaction(structure, formula):
    checker = CTLStarModelChecker(structure)
    assert checker.satisfaction_set(formula) == checker.satisfaction_set(
        negation_normal_form(formula)
    )


@given(structure=kripke_structures(), formula=ctlstar_path_formulas(max_depth=2))
@settings(max_examples=40, deadline=None)
def test_negation_of_existential_is_complement(structure, formula):
    checker = CTLStarModelChecker(structure)
    exists_set = checker.satisfaction_set(Exists(formula))
    not_exists_not = structure.states - checker.satisfaction_set(Exists(Not(formula)))
    # E g and ¬E¬g need not coincide, but A g = ¬E¬g must be a subset of E g
    # on total structures (every state has at least one path).
    assert not_exists_not <= exists_set
