"""Property tests: fair-CTL engine agreement and witness/counterexample validity.

Two families of properties are pinned down here:

* **differential** — on random total structures with random fairness
  constraints, all three engines (two SCC-restricted explicit fair-``EG``
  fixpoints, one symbolic Emerson–Lei fixpoint) must produce identical fair
  satisfaction sets, and fair satisfaction must relate to plain satisfaction
  the way the semantics dictates (fair ``EG`` ⊆ plain ``EG``, fair states =
  fair ``EG true``);
* **witness validity** — every path returned by the counterexample module is
  a real path of the structure, every ``Lasso`` closes its cycle
  (:func:`repro.kripke.paths.is_lasso`), and a fair lasso's cycle meets every
  fairness set.  A witness exists exactly when the corresponding check says
  it must.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from strategies import ctl_formulas, kripke_structures

from repro.kripke.paths import is_lasso, is_path
from repro.logic.ast import Atom, Exists, Finally, ForAll, Globally, TrueLiteral, Until
from repro.mc import FairnessConstraint, make_ctl_checker, resolve_checker
from repro.mc.counterexample import (
    counterexample_af,
    witness_ef,
    witness_eg,
    witness_eu,
)
from repro.mc.ctl import CTLModelChecker
from repro.mc.oracle import crosscheck_ctl_engines

ATOMS = ("p", "q", "r")


@st.composite
def fairness_constraints(draw):
    """A constraint of one or two atomic/disjunctive conditions over ``ATOMS``."""
    count = draw(st.integers(min_value=1, max_value=2))
    conditions = tuple(
        draw(st.sampled_from([Atom(name) for name in ATOMS])) for _ in range(count)
    )
    return FairnessConstraint(conditions=conditions)


# ---------------------------------------------------------------------------
# Differential: identical fair satisfaction sets across engines
# ---------------------------------------------------------------------------


@given(
    structure=kripke_structures(),
    formula=ctl_formulas(max_depth=2),
    fairness=fairness_constraints(),
)
@settings(max_examples=60, deadline=None)
def test_fair_satisfaction_sets_agree_across_engines(structure, formula, fairness):
    # crosscheck_ctl_engines raises on any pairwise disagreement.
    result = crosscheck_ctl_engines(structure, formula, fairness=fairness)
    assert result == CTLModelChecker(structure, fairness=fairness).satisfaction_set(formula)


@given(structure=kripke_structures(), fairness=fairness_constraints())
@settings(max_examples=60, deadline=None)
def test_fair_eg_is_subset_of_plain_eg(structure, fairness):
    for name in ATOMS:
        formula = Exists(Globally(Atom(name)))
        fair = CTLModelChecker(structure, fairness=fairness).satisfaction_set(formula)
        plain = CTLModelChecker(structure).satisfaction_set(formula)
        assert fair <= plain


@given(structure=kripke_structures(), fairness=fairness_constraints())
@settings(max_examples=60, deadline=None)
def test_fair_states_equal_fair_eg_true(structure, fairness):
    checker = CTLModelChecker(structure, fairness=fairness)
    assert checker.fair_states() == checker.satisfaction_set(
        Exists(Globally(TrueLiteral()))
    )


@given(structure=kripke_structures(), fairness=fairness_constraints())
@settings(max_examples=40, deadline=None)
def test_fair_af_duality(structure, fairness):
    from repro.logic.ast import Not

    checker = make_ctl_checker(structure, engine="bitset", fairness=fairness)
    for name in ATOMS:
        af = checker.satisfaction_set(ForAll(Finally(Atom(name))))
        assert af == structure.states - checker.satisfaction_set(
            Exists(Globally(Not(Atom(name))))
        )


# ---------------------------------------------------------------------------
# Witness validity
# ---------------------------------------------------------------------------


@given(structure=kripke_structures(), formula=ctl_formulas(max_depth=2))
@settings(max_examples=60, deadline=None)
def test_witness_ef_is_real_path_ending_in_target(structure, formula):
    checker = resolve_checker(structure, "bitset")
    path = witness_ef(checker, formula)
    holds = checker.check(Exists(Until(TrueLiteral(), formula)))
    if holds:
        assert path is not None
        assert is_path(structure, path)
        assert path[0] == structure.initial_state
        assert checker.check(formula, path[-1])
    else:
        assert path is None


@given(
    structure=kripke_structures(),
    left=ctl_formulas(max_depth=1),
    right=ctl_formulas(max_depth=1),
)
@settings(max_examples=60, deadline=None)
def test_witness_eu_prefix_satisfies_left(structure, left, right):
    checker = resolve_checker(structure, "bitset")
    path = witness_eu(checker, left, right)
    holds = checker.check(Exists(Until(left, right)))
    if not holds:
        assert path is None
        return
    assert path is not None
    assert is_path(structure, path)
    assert checker.check(right, path[-1])
    # The BFS invariant the removed re-verification used to double-check:
    # every state before the last satisfies the left operand.
    assert all(checker.check(left, state) for state in path[:-1])


@given(structure=kripke_structures(), formula=ctl_formulas(max_depth=2))
@settings(max_examples=60, deadline=None)
def test_witness_eg_lasso_is_valid_and_inside_operand(structure, formula):
    checker = resolve_checker(structure, "bitset")
    lasso = witness_eg(checker, formula)
    holds = checker.check(Exists(Globally(formula)))
    if not holds:
        assert lasso is None
        return
    assert lasso is not None
    assert is_lasso(structure, lasso)
    assert lasso.first_state == structure.initial_state
    # Pinned behavior for the removed redundant filter: the whole carrier
    # (not just the EG set) satisfies the operand.
    assert all(checker.check(formula, state) for state in lasso.positions())


@given(
    structure=kripke_structures(),
    formula=ctl_formulas(max_depth=1),
    fairness=fairness_constraints(),
)
@settings(max_examples=60, deadline=None)
def test_fair_lasso_cycle_meets_every_fairness_set(structure, formula, fairness):
    checker = make_ctl_checker(structure, engine="bitset", fairness=fairness)
    lasso = witness_eg(checker, formula)
    holds = checker.check(Exists(Globally(formula)))
    if not holds:
        assert lasso is None
        return
    assert lasso is not None
    assert is_lasso(structure, lasso)
    assert all(checker.check(formula, state) for state in lasso.positions())
    for condition_set in checker.fairness_condition_sets():
        assert any(state in condition_set for state in lasso.cycle)


@given(
    structure=kripke_structures(),
    formula=ctl_formulas(max_depth=1),
    fairness=fairness_constraints(),
)
@settings(max_examples=40, deadline=None)
def test_fair_counterexample_af_avoids_formula(structure, formula, fairness):
    checker = make_ctl_checker(structure, engine="bitset", fairness=fairness)
    lasso = counterexample_af(checker, formula)
    holds = checker.check(ForAll(Finally(formula)))
    if holds:
        assert lasso is None
        return
    assert lasso is not None
    assert is_lasso(structure, lasso)
    assert not any(checker.check(formula, state) for state in lasso.positions())


@given(structure=kripke_structures(), formula=ctl_formulas(max_depth=1))
@settings(max_examples=40, deadline=None)
def test_witnesses_agree_across_engines(structure, formula):
    """Each engine's witness is valid; existence agrees with every engine's verdict."""
    verdicts = []
    for engine in ("naive", "bitset", "bdd"):
        lasso = witness_eg(structure, formula, engine=engine)
        verdicts.append(lasso is not None)
        if lasso is not None:
            assert is_lasso(structure, lasso)
    assert len(set(verdicts)) == 1
