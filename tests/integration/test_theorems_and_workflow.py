"""Integration tests for the correspondence theorems and the other process families."""

import pytest

from repro.correspondence import (
    ParameterizedVerifier,
    blocks_correspond,
    corresponding_path,
    find_correspondence,
    is_correspondence,
    verify_index_relation,
)
from repro.kripke import reduce_to_index
from repro.logic import parse
from repro.mc import CTLStarModelChecker, ICTLStarModelChecker
from repro.systems import barrier, round_robin, token_ring

#: A battery of closed next-free CTL* formulas over the Fig. 3.1 alphabet.
FIG31_FORMULAS = [
    "AG(p | q)",
    "AG(p -> A(p U q))",
    "AG(q -> A(q U p))",
    "AG AF p",
    "AG AF q",
    "E G F q",
    "A(G F p & G F q)",
    "EF(q & EF p)",
    "E(p U (q & E(q U p)))",
]

#: Closed restricted ICTL* formulas over the ring alphabet.
RING_FORMULAS = [
    "forall i . AG(d[i] -> AF c[i])",
    "forall i . AG(c[i] -> t[i])",
    "forall i . AG(d[i] -> A(d[i] U t[i]))",
    "!(exists i . EF(!d[i] & !t[i] & E(!d[i] U t[i])))",
    "AG one t",
    "forall i . AG AF (n[i] | d[i] | c[i])",
    "forall i . AG(c[i] -> A(c[i] U n[i]))",
    "exists i . EF c[i]",
    "forall i . EF c[i]",
    "forall i . AG EF c[i]",
]


def test_theorem2_on_fig31(fig31_pair):
    """Theorem 2: corresponding structures satisfy the same CTL* formulas."""
    left, right = fig31_pair
    relation = find_correspondence(left, right)
    assert relation is not None and is_correspondence(left, right, relation)
    left_checker = CTLStarModelChecker(left)
    right_checker = CTLStarModelChecker(right)
    for text in FIG31_FORMULAS:
        formula = parse(text)
        assert left_checker.check(formula) == right_checker.check(formula), text


def test_theorem5_on_rings_of_size_three_and_four(ring3, ring4):
    """Theorem 5: (i, i')-corresponding indexed structures satisfy the same ICTL* formulas."""
    report = verify_index_relation(ring3, ring4, token_ring.corrected_index_relation(3, 4))
    assert report.holds
    small_checker = ICTLStarModelChecker(ring3)
    large_checker = ICTLStarModelChecker(ring4)
    for text in RING_FORMULAS:
        formula = parse(text)
        assert small_checker.check(formula) == large_checker.check(formula), text


def test_theorem5_contrapositive_on_m2(ring2, ring3):
    """M_2 and M_3 disagree on a restricted formula, hence cannot correspond."""
    phi = token_ring.distinguishing_formula()
    assert ICTLStarModelChecker(ring2).check(phi) != ICTLStarModelChecker(ring3).check(phi)
    assert verify_index_relation(
        ring2, ring3, token_ring.section5_index_relation(3)
    ).holds is False


def test_lemma1_block_matching_on_the_rings(ring3, ring4):
    """Lemma 1, executably: every finite path of M_3|1 has a block-matched path in M_4|1."""
    left = reduce_to_index(ring3, 1)
    right = reduce_to_index(ring4, 1)
    relation = find_correspondence(left, right)
    assert relation is not None
    # A specific interesting path: process 1 goes N -> D -> C -> N.
    path = [left.initial_state]
    import random

    rng = random.Random(3)
    for _ in range(8):
        path.append(rng.choice(sorted(left.successors(path[-1]), key=repr)))
    matching = corresponding_path(left, right, relation, path)
    assert blocks_correspond(relation, matching)
    from repro.kripke.paths import is_path

    assert is_path(right, list(matching.right_path))


@pytest.mark.parametrize("large_size", [3, 4, 5])
def test_round_robin_workflow(large_size, round_robin2):
    large = round_robin.build_round_robin(large_size)
    verifier = ParameterizedVerifier(
        round_robin2, large, round_robin.round_robin_index_relation(large_size)
    )
    direct = ICTLStarModelChecker(large)
    for name, formula in round_robin.round_robin_properties().items():
        assert verifier.check(formula).holds == direct.check(formula), name


@pytest.mark.parametrize("large_size", [3, 4])
def test_barrier_workflow(large_size, barrier2):
    large = barrier.build_barrier(large_size)
    verifier = ParameterizedVerifier(
        barrier2, large, barrier.barrier_index_relation(large_size)
    )
    direct = ICTLStarModelChecker(large)
    for name, formula in barrier.barrier_properties().items():
        assert verifier.check(formula).holds == direct.check(formula), name


def test_round_robin_formulas_agree_between_sizes(round_robin2, round_robin4):
    """A broader formula battery agrees between the 2- and 4-process schedulers."""
    texts = [
        "forall i . AG(t[i] -> AF c[i])",
        "forall i . AG AF c[i]",
        "forall i . AG(c[i] -> t[i])",
        "AG one t",
        "forall i . AG(c[i] -> A(c[i] U !c[i]))",
        "exists i . AG AF t[i]",
    ]
    small = ICTLStarModelChecker(round_robin2)
    large = ICTLStarModelChecker(round_robin4)
    for text in texts:
        formula = parse(text)
        assert small.check(formula) == large.check(formula), text


def test_experiment_drivers_report_the_reproduction_findings():
    from repro.analysis import experiments

    e7 = experiments.run_e7_correspondence(large_size=4)
    assert e7["paper_claim_m2_corresponds"] is False
    assert e7["corrected_claim_base3_corresponds"] is True
    assert e7["distinguishing_formula_on_m2"] is True
    assert e7["distinguishing_formula_on_large"] is False
    assert e7["transfers_match_direct"] is True

    e8 = experiments.run_e8_explosion(sizes=(2, 3, 4), large_size=100, num_walks=3, walk_length=15)
    assert e8["states_grow_monotonically"]
    assert e8["large_ring_spot_check"]["paired"] == e8["large_ring_spot_check"]["visited"]

    e2 = experiments.run_e2_fig41(max_size=4)
    assert e2["counting_matches_size"]
    e10 = experiments.run_e10_scaling(sizes=(3, 4))
    assert all(row["corresponds"] for row in e10["rows"])
