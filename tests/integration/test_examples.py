"""Smoke tests: every example script runs to completion and prints what it promises."""

import os
import runpy

import pytest

EXAMPLES_DIR = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__)))), "examples"
)

#: script name -> module-level constants shrunk so the smoke test stays fast.
EXAMPLES = {
    "quickstart.py": {},
    "token_ring_mutex.py": {"LARGE_SIZE": 4},
    "state_explosion.py": {
        "SWEEP_SIZES": (2, 3, 4),
        "SYMBOLIC_SIZES": (5, 6),
        "LARGE_SIZE": 50,
    },
    "parameterized_families.py": {"LARGE_SIZE": 4},
    "counting_and_restrictions.py": {},
    "fair_liveness.py": {"RING_SIZE": 3, "SYMBOLIC_SIZE": 5},
}


@pytest.mark.parametrize("script", sorted(EXAMPLES))
def test_example_runs(script, capsys):
    path = os.path.join(EXAMPLES_DIR, script)
    assert os.path.exists(path), path
    module_globals = runpy.run_path(path, run_name="not_main")
    main = module_globals["main"]
    # Shrink the expensive sweeps; the functions read these constants through
    # their module globals.
    for name, value in EXAMPLES[script].items():
        main.__globals__[name] = value
    main()
    output = capsys.readouterr().out
    assert "==" in output
    assert len(output.splitlines()) > 5
