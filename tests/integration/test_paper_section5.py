"""Integration tests reproducing the Section 5 narrative end to end.

These tests tie together the token-ring system, the ICTL* model checker, the
correspondence machinery, and the parameterized-verification workflow — and
they pin down the reproduction's documented deviation from the paper (the
two-process base case is too small; three processes work).
"""

import pytest

from repro.correspondence import (
    ParameterizedVerifier,
    correspondence_violations,
    find_correspondence,
    verify_index_relation,
)
from repro.kripke import reduce_to_index, to_dot
from repro.mc import ICTLStarModelChecker
from repro.systems import token_ring


def test_fig51_two_process_global_state_graph(ring2):
    """Fig. 5.1: eight reachable global states, total transition relation."""
    assert ring2.num_states == 8
    assert ring2.num_transitions == 14
    assert ring2.is_total()
    # The graph is strongly connected (the token keeps circulating).
    from repro.kripke import reachable_states

    for state in ring2.states:
        assert reachable_states(ring2, state) == ring2.states
    # The DOT export mentions every state (smoke test for Fig. 5.1 rendering).
    assert to_dot(ring2).count("->") == 14


@pytest.mark.parametrize("size", [2, 3, 4, 5])
def test_invariants_hold_at_every_size(size):
    structure = token_ring.build_token_ring(size)
    checker = ICTLStarModelChecker(structure)
    assert token_ring.partition_invariant_holds(structure)
    assert checker.check(token_ring.invariant_request_persistence())
    assert checker.check(token_ring.invariant_one_token())


@pytest.mark.parametrize("size", [2, 3, 4, 5])
def test_the_four_properties_hold_at_every_size(size):
    structure = token_ring.build_token_ring(size)
    checker = ICTLStarModelChecker(structure)
    for name, formula in token_ring.ring_properties().items():
        assert checker.check(formula), name


@pytest.mark.parametrize("size", [2, 3, 4, 5])
def test_eventual_token_needs_fairness_at_every_size(size):
    """``AF t_i`` fails in plain CTL and holds under scheduler fairness."""
    structure = token_ring.build_token_ring(size)
    constraint = token_ring.ring_scheduler_fairness(size)
    formula = token_ring.property_eventual_token()
    assert not ICTLStarModelChecker(structure).check(formula)
    assert ICTLStarModelChecker(structure, fairness=constraint).check(formula)


def test_fair_liveness_crosschecked_and_counterexampled(ring4):
    """The acceptance loop: engine agreement, fair verdict, validated fair lasso."""
    from repro.kripke.paths import is_lasso
    from repro.kripke.structure import IndexedProp
    from repro.logic.builders import AF, iatom
    from repro.mc import counterexample_af, crosscheck_ctl_engines

    constraint = token_ring.ring_scheduler_fairness(4)
    # All three engines agree that every state satisfies fair AF t_4.
    satisfied = crosscheck_ctl_engines(ring4, AF(iatom("t", 4)), fairness=constraint)
    assert satisfied == ring4.states
    # The unfair claim fails, and the bitset engine certifies it with a real
    # lasso on which process 4 never holds the token.
    lasso = counterexample_af(ring4, iatom("t", 4), engine="bitset")
    assert lasso is not None
    assert is_lasso(ring4, lasso)
    assert all(IndexedProp("t", 4) not in ring4.label(s) for s in lasso.positions())
    # Under fairness no counterexample exists.
    assert counterexample_af(ring4, iatom("t", 4), engine="bitset", fairness=constraint) is None


def test_paper_claim_m2_vs_mr_fails(ring2, ring4):
    """The literal Section 5 claim: M_2 corresponds to M_r.  It does not."""
    report = verify_index_relation(ring2, ring4, token_ring.section5_index_relation(4))
    assert not report.holds
    assert (1, 1) in report.failing_pairs


def test_distinguishing_formula_witnesses_the_failure(ring2, ring3, ring4):
    """A restricted ICTL* formula separates M_2 from the larger rings, so by
    (the contrapositive of) Theorem 5 no correspondence can exist."""
    phi = token_ring.distinguishing_formula()
    assert ICTLStarModelChecker(ring2).check(phi) is True
    assert ICTLStarModelChecker(ring3).check(phi) is False
    assert ICTLStarModelChecker(ring4).check(phi) is False


def test_explicit_section5_relation_violates_the_definition(ring2, ring4):
    """The appendix's rank-based relation fails the clause checks (the proof gap)."""
    relation = token_ring.section5_correspondence(ring2, ring4, 1, 1)
    violations = correspondence_violations(
        reduce_to_index(ring2, 1), reduce_to_index(ring4, 1), relation
    )
    assert violations
    assert any("clause 2" in violation for violation in violations)


def test_corrected_base_case_corresponds(ring3, ring4):
    """Rings of size >= 3 correspond pairwise for every pair of the corrected IN."""
    report = verify_index_relation(ring3, ring4, token_ring.corrected_index_relation(3, 4))
    assert report.holds
    # And the minimal-degree relations satisfy the definition.
    for (small_index, large_index), relation in report.relations.items():
        assert relation is not None
        assert not correspondence_violations(
            reduce_to_index(ring3, small_index), reduce_to_index(ring4, large_index), relation
        )


def test_transfer_workflow_from_the_three_process_ring(ring3):
    """The paper's intended workflow, with the corrected base: check small, conclude large."""
    large = token_ring.build_token_ring(5)
    verifier = ParameterizedVerifier(ring3, large, token_ring.corrected_index_relation(3, 5))
    direct = ICTLStarModelChecker(large)
    for name, formula in token_ring.ring_properties().items():
        transferred = verifier.check(formula)
        assert transferred.holds == direct.check(formula), name
    for name, formula in token_ring.ring_invariants().items():
        transferred = verifier.check(formula)
        assert transferred.holds == direct.check(formula), name


def test_one_process_ring_cannot_be_the_base(ring2):
    """The paper's own remark: the one-process ring corresponds to nothing larger."""
    ring1 = token_ring.build_token_ring(1)
    assert find_correspondence(reduce_to_index(ring1, 1), reduce_to_index(ring2, 1)) is None


def test_counterexample_for_the_distinguishing_formula(ring3):
    """Extract the concrete reason the distinguishing formula fails for r >= 3."""
    from repro.logic.transform import instantiate_quantifiers
    from repro.mc import counterexample_ag
    from repro.logic.ast import ForAll, Globally

    # Instantiate the formula for process 1 and strip the leading AG to find a
    # reachable state where the body fails.
    phi = token_ring.distinguishing_formula()
    instance = instantiate_quantifiers(phi, [1])
    # instance = AG(body); extract body.
    assert isinstance(instance, ForAll) and isinstance(instance.path, Globally)
    body = instance.path.operand
    path = counterexample_ag(ring3, body)
    assert path is not None
    failing = path[-1]
    # The failing state has process 1 delayed while the token is elsewhere.
    assert 1 in failing.delayed
